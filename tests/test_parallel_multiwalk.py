"""Tests for the multiprocessing-based independent multi-walk solver."""

from __future__ import annotations

import pytest

from repro.core.params import ASParameters
from repro.costas.array import is_costas
from repro.exceptions import ParallelExecutionError
from repro.experiments.base import costas_factory
from repro.parallel.multiwalk import MultiWalkSolver


class TestSingleWorker:
    def test_inline_path_solves(self):
        solver = MultiWalkSolver(
            costas_factory(9), ASParameters.for_costas(9), n_workers=1, seed_root=1
        )
        outcome = solver.solve()
        assert outcome.solved
        assert outcome.n_workers == 1
        assert len(outcome.results) == 1
        assert is_costas(outcome.best.configuration)
        assert outcome.total_iterations == outcome.best.iterations
        assert len(outcome.seeds) == 1

    def test_explicit_seeds_are_used(self):
        solver = MultiWalkSolver(
            costas_factory(9),
            ASParameters.for_costas(9),
            n_workers=1,
            seeds=[1234],
        )
        outcome = solver.solve()
        assert outcome.seeds == [1234]
        assert outcome.best.seed == 1234


class TestValidation:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ParallelExecutionError):
            MultiWalkSolver(costas_factory(9), n_workers=0)

    def test_rejects_too_few_seeds(self):
        with pytest.raises(ParallelExecutionError):
            MultiWalkSolver(costas_factory(9), n_workers=4, seeds=[1, 2])


class TestMultiProcess:
    def test_two_workers_solve_and_terminate_early(self):
        solver = MultiWalkSolver(
            costas_factory(10),
            ASParameters.for_costas(10, check_period=8),
            n_workers=2,
            seed_root=7,
        )
        outcome = solver.solve(max_time=120.0)
        assert outcome.solved
        assert outcome.n_workers == 2
        assert len(outcome.results) == 2
        assert is_costas(outcome.best.configuration)
        # Every worker reports, and at least one of them actually solved.
        assert any(r.solved for r in outcome.results)
        assert all("walk_index" in r.extra for r in outcome.results)

    def test_parallel_helper_function(self):
        from repro import parallel_solve_costas

        outcome = parallel_solve_costas(9, n_workers=2, seed_root=3, max_time=120.0)
        assert outcome.solved


def _exit_without_reporting(*args, **kwargs):  # pragma: no cover - child body
    import os

    os._exit(3)


class TestDeadWorkerDetection:
    def test_partial_results_survive_a_dead_loser(self, monkeypatch):
        # One walk reports (and solves), the other is killed before reporting:
        # the solved outcome must be returned, with the gap recorded, instead
        # of being discarded by an exception.
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("requires the fork start method")
        import repro.parallel.multiwalk as mw

        real_worker = mw._worker

        def selective(
            factory, params, spec, seed, walk_index, stop_event, queue, max_time, *rest
        ):
            if walk_index == 0:
                real_worker(
                    factory, params, spec, seed, walk_index, stop_event, queue,
                    max_time, *rest
                )
            else:  # pragma: no cover - child body
                import os

                os._exit(3)

        monkeypatch.setattr(mw, "_worker", selective)
        solver = MultiWalkSolver(
            costas_factory(9),
            ASParameters.for_costas(9),
            n_workers=2,
            seed_root=1,
            mp_context="fork",
        )
        outcome = solver.solve(join_timeout=1.0)
        assert outcome.solved
        assert outcome.missing_walks == [1]
        assert len(outcome.results) == 1

    def test_worker_death_raises_listing_missing_walks(self, monkeypatch):
        # A worker that hard-crashes (os._exit, OOM kill) never puts anything
        # on the queue; solve() used to block forever on queue.get().  With
        # the fork start method the child inherits the monkeypatched module,
        # so every walk dies silently and there is nothing to salvage.
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("requires the fork start method")
        import repro.parallel.multiwalk as mw

        monkeypatch.setattr(mw, "_worker", _exit_without_reporting)
        solver = MultiWalkSolver(
            costas_factory(9),
            ASParameters.for_costas(9),
            n_workers=2,
            seed_root=1,
            mp_context="fork",
        )
        with pytest.raises(ParallelExecutionError) as excinfo:
            solver.solve(join_timeout=1.0)
        message = str(excinfo.value)
        assert "died without reporting" in message
        assert "[0, 1]" in message

    def test_deadline_backstop_when_worker_hangs(self, monkeypatch):
        # A worker that never reports but stays alive must trip the
        # max_time-derived deadline instead of blocking forever.
        import multiprocessing as mp
        import time as time_module

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("requires the fork start method")
        import repro.parallel.multiwalk as mw

        def _hang(*args, **kwargs):  # pragma: no cover - child body
            time_module.sleep(60)

        monkeypatch.setattr(mw, "_worker", _hang)
        # The mechanism is under test, not the production grace constant.
        monkeypatch.setattr(mw, "_STARTUP_ALLOWANCE", 0.5)
        solver = MultiWalkSolver(
            costas_factory(9),
            ASParameters.for_costas(9),
            n_workers=2,
            seed_root=1,
            mp_context="fork",
        )
        start = time_module.perf_counter()
        with pytest.raises(ParallelExecutionError) as excinfo:
            solver.solve(max_time=0.5, join_timeout=0.5)
        assert time_module.perf_counter() - start < 30
        assert "deadline" in str(excinfo.value)


class TestGracefulSignalDrain:
    """SIGINT/SIGTERM during solve() must drain workers and return partial
    results instead of leaking child processes."""

    @pytest.mark.parametrize("signum_name", ["SIGINT", "SIGTERM"])
    def test_signal_drains_and_returns_partial_results(self, signum_name):
        import multiprocessing as mp
        import os
        import signal
        import threading
        import time as time_module

        signum = getattr(signal, signum_name)
        handler_before = signal.getsignal(signum)
        solver = MultiWalkSolver(
            costas_factory(24),  # hard enough not to solve in ~1 s
            ASParameters.for_costas(24, check_period=16),
            n_workers=2,
            seed_root=3,
        )
        timer = threading.Timer(1.0, lambda: os.kill(os.getpid(), signum))
        timer.start()
        start = time_module.perf_counter()
        try:
            outcome = solver.solve(max_time=300.0, join_timeout=15.0)
        finally:
            timer.cancel()
        elapsed = time_module.perf_counter() - start
        if outcome.solved and not outcome.interrupted:
            pytest.skip("solved before the signal fired")
        assert outcome.interrupted
        assert elapsed < 60.0  # did not run anywhere near max_time
        assert outcome.results  # partial statistics from the drained walks
        assert all(
            r.stop_reason in ("external_stop", "solved") for r in outcome.results
        )
        # No leaked children, and the previous handler was restored.
        assert mp.active_children() == []
        assert signal.getsignal(signum) == handler_before


class TestLivenessHelper:
    def test_detector_grace_period(self):
        import time as time_module

        from repro.parallel.liveness import DeadProcessDetector, poll_interval

        class FakeProc:
            def __init__(self, alive):
                self.alive = alive

            def is_alive(self):
                return self.alive

        detector = DeadProcessDetector(grace=0.05)
        live = {0: FakeProc(True), 1: FakeProc(True)}
        assert detector.poll(live) == []
        live[1].alive = False
        assert detector.poll(live) == []  # first observation starts the clock
        time_module.sleep(0.08)
        assert detector.poll(live) == [1]
        # A respawn (alive again under the same id) drops the clock.
        live[1].alive = True
        assert detector.poll(live) == []
        live[1].alive = False
        assert detector.poll(live) == []  # fresh grace period
        assert 0.05 <= poll_interval(1.0) <= 0.5

    def test_detection_is_per_process_despite_sibling_progress(self):
        """A dead process is detected even while siblings keep reporting —
        the clock is per process, not shared (a shared clock starves
        detection under steady traffic)."""
        import time as time_module

        from repro.parallel.liveness import DeadProcessDetector

        class FakeProc:
            def __init__(self, alive):
                self.alive = alive

            def is_alive(self):
                return self.alive

        detector = DeadProcessDetector(grace=0.05)
        pending = {0: FakeProc(True), 1: FakeProc(False)}
        deadline = time_module.perf_counter() + 2.0
        declared = []
        while time_module.perf_counter() < deadline and not declared:
            # Sibling 0 "reports" constantly: pending churns but 1 stays dead.
            declared = detector.poll(pending)
            time_module.sleep(0.01)
        assert declared == [1]
