"""Tests for the Adaptive Search engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.callbacks import CallbackList, CostTraceRecorder, EventCounter
from repro.core.engine import AdaptiveSearch, solve
from repro.core.params import ASParameters
from repro.core.problem import FunctionalPermutationProblem
from repro.costas.array import is_costas
from repro.models import AllIntervalProblem, CostasProblem, NQueensProblem


class TestSolvesProblems:
    def test_solves_small_costas(self):
        result = solve(CostasProblem(9), seed=0, params=ASParameters.for_costas(9))
        assert result.solved
        assert result.cost == 0
        assert is_costas(result.configuration)
        assert result.stop_reason == "solved"

    def test_solves_nqueens(self):
        result = solve(
            NQueensProblem(20), seed=1, params=ASParameters.for_problem_size(20)
        )
        assert result.solved
        problem = NQueensProblem(20)
        problem.set_configuration(result.configuration)
        assert problem.cost() == 0

    def test_solves_all_interval(self):
        result = solve(
            AllIntervalProblem(10), seed=2, params=ASParameters.for_problem_size(10)
        )
        assert result.solved

    def test_deterministic_given_seed(self):
        a = solve(CostasProblem(9), seed=7, params=ASParameters.for_costas(9))
        b = solve(CostasProblem(9), seed=7, params=ASParameters.for_costas(9))
        assert a.iterations == b.iterations
        assert list(a.configuration) == list(b.configuration)

    def test_different_seeds_generally_differ(self):
        a = solve(CostasProblem(10), seed=1, params=ASParameters.for_costas(10))
        b = solve(CostasProblem(10), seed=2, params=ASParameters.for_costas(10))
        assert a.iterations != b.iterations or list(a.configuration) != list(
            b.configuration
        )


class TestBudgetsAndStops:
    def test_max_iterations_respected(self):
        params = ASParameters.for_costas(12, max_iterations=5)
        result = solve(CostasProblem(12), seed=0, params=params)
        assert result.iterations <= 5
        if not result.solved:
            assert result.stop_reason == "max_iterations"

    def test_external_stop_check(self):
        calls = {"n": 0}

        def stop() -> bool:
            calls["n"] += 1
            return calls["n"] > 1

        params = ASParameters.for_costas(12, check_period=1)
        result = solve(CostasProblem(12), seed=0, params=params, stop_check=stop)
        assert result.stop_reason in ("external_stop", "solved")
        assert calls["n"] >= 1

    def test_max_time_stops_run(self):
        params = ASParameters.for_costas(13, check_period=1)
        result = solve(CostasProblem(13), seed=0, params=params, max_time=1e-9)
        assert result.stop_reason in ("max_time", "solved")

    def test_already_solved_initial_configuration(self, example_costas_5):
        problem = CostasProblem(5)
        result = solve(
            problem,
            seed=0,
            params=ASParameters.for_costas(5),
            initial_configuration=np.array(example_costas_5),
        )
        assert result.solved
        assert result.iterations == 0

    def test_restart_counter(self):
        params = ASParameters.for_costas(
            12, restart_limit=5, max_restarts=3, max_iterations=50
        )
        result = solve(CostasProblem(12), seed=3, params=params)
        assert result.restarts <= 3


class TestInstrumentation:
    def test_callbacks_receive_events_and_iterations(self):
        trace = CostTraceRecorder()
        events = EventCounter()
        callbacks = CallbackList([trace, events])
        result = solve(
            CostasProblem(10),
            seed=4,
            params=ASParameters.for_costas(10),
            callbacks=callbacks,
        )
        assert len(trace) == result.iterations
        assert events["solution"] == 1
        total_moves = (
            events["improving_move"] + events["plateau_move"] + events["tabu_mark"]
        )
        assert total_moves > 0

    def test_result_counters_consistent(self):
        result = solve(CostasProblem(10), seed=5, params=ASParameters.for_costas(10))
        assert result.swaps <= result.iterations
        assert result.local_minima <= result.iterations
        assert result.resets <= result.iterations
        assert result.wall_time > 0
        assert result.seed == 5
        assert result.iterations_per_second > 0

    def test_solver_and_problem_fields(self):
        result = solve(CostasProblem(9), seed=0, params=ASParameters.for_costas(9))
        assert result.solver == "adaptive-search"
        assert "costas" in result.problem


class TestGenericReset:
    def test_generic_reset_preserves_permutation(self, rng):
        problem = FunctionalPermutationProblem(10, lambda perm: 1)  # never solved
        problem.initialise(rng)
        AdaptiveSearch._generic_reset(problem, rng, 0.3)
        assert sorted(problem.configuration()) == list(range(10))

    def test_generic_reset_used_when_no_custom_reset(self):
        # A functional problem has no custom reset; the engine must still run
        # and stay within budget without errors.
        problem = FunctionalPermutationProblem(
            8, lambda perm: int(np.sum(perm[:2])) + 1
        )  # cost never 0 -> exercise reset/restart paths
        params = ASParameters(
            tabu_tenure=2,
            reset_limit=1,
            reset_percentage=0.25,
            plateau_probability=0.5,
            local_min_accept_probability=0.0,
            max_iterations=200,
        )
        result = solve(problem, seed=0, params=params)
        assert not result.solved
        assert result.resets > 0
        assert sorted(result.configuration) == list(range(8))


class _EverywhereLocalMinimum(FunctionalPermutationProblem):
    """Cost 1 + (#misplaced values): the identity is a strict local minimum
    with nonzero cost, so every iteration marks the culprit tabu."""

    def __init__(self, n: int) -> None:
        super().__init__(
            n,
            cost_fn=lambda perm: 1 + int(np.sum(perm != np.arange(len(perm)))),
            variable_errors_fn=lambda perm: np.ones(len(perm), dtype=np.int64),
            name="stuck",
        )


class TestAllTabuEdgeCase:
    """When every variable is tabu the mask is skipped and tabu variables
    become selectable again (pinned behaviour; see AdaptiveSearch.solve)."""

    def test_engine_keeps_selecting_once_everything_is_tabu(self):
        n = 6
        problem = _EverywhereLocalMinimum(n)
        events = EventCounter()
        # Huge tenure, reset threshold never reached, no uphill escapes and no
        # plateaus: after n iterations every variable is tabu simultaneously.
        params = ASParameters(
            tabu_tenure=10_000,
            reset_limit=1_000_000,
            plateau_probability=0.0,
            local_min_accept_probability=0.0,
            max_iterations=4 * n,
        )
        result = solve(
            problem,
            seed=0,
            params=params,
            callbacks=CallbackList([events]),
            initial_configuration=np.arange(n),
        )
        # The run must keep iterating (and marking) well past the point where
        # all n variables are tabu, rather than dying on an empty candidate
        # set or an all -1 error vector.
        assert not result.solved
        assert result.iterations == 4 * n
        assert events["tabu_mark"] == 4 * n
        assert events["local_minimum"] == 4 * n
        assert result.resets == 0

    def test_no_moves_are_applied_while_stuck(self):
        # Sanity companion: the all-tabu iterations mark variables but never
        # move, so the configuration is untouched for the whole run.
        n = 6
        problem = _EverywhereLocalMinimum(n)
        params = ASParameters(
            tabu_tenure=10_000,
            reset_limit=1_000_000,
            plateau_probability=0.0,
            local_min_accept_probability=0.0,
            max_iterations=3 * n,
        )
        result = solve(
            problem,
            seed=1,
            params=params,
            initial_configuration=np.arange(n),
        )
        assert result.swaps == 0
        assert result.iterations == 3 * n
        assert list(problem.configuration()) == list(range(n))


class TestEngineObject:
    def test_engine_params_default_and_override(self):
        engine = AdaptiveSearch(params=ASParameters.for_costas(9))
        result = engine.solve(CostasProblem(9), seed=0)
        assert result.solved
        override = ASParameters.for_costas(9, max_iterations=1)
        capped = engine.solve(CostasProblem(12), seed=0, params=override)
        assert capped.iterations <= 1
