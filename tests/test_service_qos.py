"""Tests for the QoS admission pipeline: lanes, quotas, shedding, histograms.

The scheduler-level tests exercise the multi-lane ``RequestScheduler``
directly (no processes); the HTTP tests spin a tiny lane-enabled server to
pin the 429/503 wire contracts and the ``X-Repro-Tenant`` header.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.service.qos import (
    BACKGROUND,
    BATCH,
    INTERACTIVE,
    LaneSpec,
    LatencyHistogram,
    TenantQuotas,
    TokenBucket,
    classify_lane,
    default_lanes,
    parse_lanes,
)
from repro.service.scheduler import (
    RequestScheduler,
    RequestSheddedError,
    SchedulerQuotaError,
    SchedulerSaturatedError,
)


def _submit(sched, order, *, lane=None, tenant="default", priority=0):
    return sched.submit(
        ("costas", order),
        {"order": order},
        priority=priority,
        lane=lane,
        tenant=tenant,
    )


def _lanes(depth=None):
    return default_lanes(depth)


# --------------------------------------------------------------------- parsing
class TestLaneSpecs:
    def test_default_lanes_order_and_weights(self):
        lanes = default_lanes(64)
        assert [s.name for s in lanes] == [INTERACTIVE, BATCH, BACKGROUND]
        assert [s.weight for s in lanes] == [6, 3, 1]
        assert all(s.depth == 64 for s in lanes)

    def test_parse_lanes_custom_spec(self):
        lanes = parse_lanes("fast=8:4,slow=32", default_depth=16)
        assert lanes[0] == LaneSpec("fast", depth=8, weight=4)
        assert lanes[1] == LaneSpec("slow", depth=32, weight=1)

    def test_parse_lanes_default_keyword(self):
        assert parse_lanes("default", 10) == default_lanes(10)

    def test_parse_lanes_rejects_duplicates(self):
        with pytest.raises(ValueError):
            parse_lanes("a=1,a=2")

    def test_lane_spec_validation(self):
        with pytest.raises(ValueError):
            LaneSpec("bad,name")
        with pytest.raises(ValueError):
            LaneSpec("x", depth=0)
        with pytest.raises(ValueError):
            LaneSpec("x", weight=0)


class TestClassify:
    def test_explicit_lane_wins(self):
        names = [s.name for s in _lanes()]
        assert classify_lane(lane=BACKGROUND, priority=9, lanes=names) == BACKGROUND

    def test_unknown_explicit_lane_raises(self):
        with pytest.raises(ValueError):
            classify_lane(lane="vip", lanes=[s.name for s in _lanes()])

    def test_tight_deadline_is_interactive(self):
        names = [s.name for s in _lanes()]
        assert classify_lane(deadline=5.0, lanes=names) == INTERACTIVE
        assert classify_lane(deadline=60.0, lanes=names) == BATCH

    def test_priority_sign_classifies(self):
        names = [s.name for s in _lanes()]
        assert classify_lane(priority=2, lanes=names) == INTERACTIVE
        assert classify_lane(priority=-1, lanes=names) == BACKGROUND
        assert classify_lane(lanes=names) == BATCH


# -------------------------------------------------------------------- quotas
class TestTokenBucket:
    def test_burst_then_refusal_then_refill(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        now = 1000.0
        assert bucket.take(now) is None
        assert bucket.take(now) is None
        retry = bucket.take(now)
        assert retry is not None and retry > 0
        # One second later a token has dripped back in.
        assert bucket.take(now + 1.0) is None

    def test_zero_rate_never_refills(self):
        bucket = TokenBucket(rate=0.0, burst=1.0)
        assert bucket.take(100.0) is None
        assert bucket.take(100.0) == 60.0


class TestTenantQuotas:
    def test_from_spec_and_catch_all(self):
        quotas = TenantQuotas.from_spec("alice=5:10,*=1")
        assert quotas.limit_for("alice") == (5.0, 10.0)
        assert quotas.limit_for("mallory") == (1.0, 1.0)

    def test_unlisted_tenant_without_catch_all_is_unlimited(self):
        quotas = TenantQuotas.from_spec("alice=1")
        for _ in range(50):
            assert quotas.take("bob", now=0.0) is None

    def test_bad_spec(self):
        with pytest.raises(ValueError):
            TenantQuotas.from_spec("alice")


# ----------------------------------------------------------------- histograms
class TestLatencyHistogram:
    def test_percentiles_bracket_the_samples(self):
        hist = LatencyHistogram()
        for ms in range(1, 101):  # 1..100 ms
            hist.record(ms / 1000.0)
        snap = hist.snapshot()
        assert snap["count"] == 100
        # Log buckets overestimate by at most one bucket width (30%).
        assert 0.045 * 1e3 <= snap["p50_ms"] <= 0.075 * 1e3
        assert snap["p99_ms"] <= snap["max_ms"] * 1.3
        assert snap["p50_ms"] <= snap["p95_ms"] <= snap["p99_ms"]

    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.percentile(99) is None
        assert hist.snapshot() == {"count": 0}


# ---------------------------------------------------------- multi-lane queue
class TestLaneScheduling:
    def test_single_lane_mode_unchanged(self):
        sched = RequestScheduler(max_depth=2)
        assert sched.lane_order == ("default",)
        _submit(sched, 18)
        _submit(sched, 19)
        with pytest.raises(SchedulerSaturatedError) as excinfo:
            _submit(sched, 20)
        # The pre-lane message shape: no lane= suffix in single-lane mode.
        assert "lane=" not in str(excinfo.value)

    def test_weighted_fair_pop_never_starves_batch(self):
        sched = RequestScheduler(lanes=default_lanes())
        for i in range(12):
            _submit(sched, 100 + i, lane=INTERACTIVE)
        for i in range(12):
            _submit(sched, 200 + i, lane=BATCH)
        popped = [sched.next_job(timeout=0).lane for _ in range(9)]
        # 6:3 weights -> batch gets popped within any 3-pop window on
        # average; certainly within the first nine pops.
        assert BATCH in popped
        assert popped.count(INTERACTIVE) > popped.count(BATCH)

    def test_only_lanes_restricts_pop(self):
        sched = RequestScheduler(lanes=default_lanes())
        _submit(sched, 1, lane=BACKGROUND)
        assert sched.next_job(timeout=0, only_lanes=(INTERACTIVE,)) is None
        _submit(sched, 2, lane=INTERACTIVE)
        job = sched.next_job(timeout=0, only_lanes=(INTERACTIVE,))
        assert job is not None and job.lane == INTERACTIVE

    def test_per_lane_depth_rejects_newcomer(self):
        lanes = (
            LaneSpec(INTERACTIVE, depth=8, weight=6),
            LaneSpec(BACKGROUND, depth=1, weight=1),
        )
        sched = RequestScheduler(lanes=lanes)
        _submit(sched, 1, lane=BACKGROUND)
        with pytest.raises(SchedulerSaturatedError) as excinfo:
            _submit(sched, 2, lane=BACKGROUND)
        assert "lane=background" in str(excinfo.value)
        # The interactive lane still has room.
        _submit(sched, 3, lane=INTERACTIVE)

    def test_lane_promotion_on_coalesced_join(self):
        sched = RequestScheduler(lanes=default_lanes())
        t1 = _submit(sched, 18, lane=BACKGROUND)
        t2 = _submit(sched, 18, lane=INTERACTIVE)
        assert t1.job is t2.job
        assert t1.job.lane == INTERACTIVE
        job = sched.next_job(timeout=0, only_lanes=(INTERACTIVE,))
        assert job is t1.job
        # The stale background heap entry is skipped, not double-popped.
        assert sched.next_job(timeout=0) is None

    def test_join_from_cheaper_lane_does_not_demote(self):
        sched = RequestScheduler(lanes=default_lanes())
        t1 = _submit(sched, 18, lane=INTERACTIVE)
        _submit(sched, 18, lane=BACKGROUND)
        assert t1.job.lane == INTERACTIVE

    def test_unknown_lane_raises(self):
        sched = RequestScheduler(lanes=default_lanes())
        with pytest.raises(ValueError):
            _submit(sched, 1, lane="vip")


class TestShedding:
    def _sched(self, max_depth):
        return RequestScheduler(max_depth=max_depth, lanes=default_lanes())

    def test_global_saturation_sheds_cheapest_lane(self):
        sched = self._sched(max_depth=2)
        _submit(sched, 1, lane=BACKGROUND)
        victim = _submit(sched, 2, lane=BACKGROUND)
        admitted = _submit(sched, 3, lane=INTERACTIVE)
        # The newest background job was shed, the interactive job admitted.
        with pytest.raises(RequestSheddedError):
            victim.result(timeout=1)
        assert admitted.job.state == "queued"
        stats = sched.stats()
        assert stats["shed"] == 1
        assert stats["lanes"][BACKGROUND]["shed"] == 1
        assert stats["lanes"][INTERACTIVE]["shed"] == 0

    def test_shed_prefers_newest_victim(self):
        sched = self._sched(max_depth=2)
        older = _submit(sched, 1, lane=BACKGROUND)
        newer = _submit(sched, 2, lane=BACKGROUND)
        _submit(sched, 3, lane=INTERACTIVE)
        assert not older.done()
        with pytest.raises(RequestSheddedError):
            newer.result(timeout=1)

    def test_cheapest_arrival_is_rejected_not_shed(self):
        sched = self._sched(max_depth=2)
        _submit(sched, 1, lane=BACKGROUND)
        _submit(sched, 2, lane=BACKGROUND)
        # A background arrival cannot shed its own lane: plain 503.
        with pytest.raises(SchedulerSaturatedError):
            _submit(sched, 3, lane=BACKGROUND)
        assert sched.stats()["shed"] == 0

    def test_interactive_flood_cannot_shed_interactive(self):
        sched = self._sched(max_depth=1)
        _submit(sched, 1, lane=INTERACTIVE)
        with pytest.raises(SchedulerSaturatedError):
            _submit(sched, 2, lane=INTERACTIVE)

    def test_shed_error_carries_retry_after(self):
        err = RequestSheddedError("x", retry_after=2.5)
        assert err.retry_after == 2.5


class TestSchedulerQuotas:
    def test_new_jobs_charge_quota_joins_are_free(self):
        quotas = TenantQuotas({"alice": (0.0, 2.0)})
        sched = RequestScheduler(lanes=default_lanes(), quotas=quotas)
        _submit(sched, 1, tenant="alice")
        _submit(sched, 2, tenant="alice")
        # A coalesced join does not cost a token ...
        _submit(sched, 1, tenant="alice")
        # ... but a third distinct job does, and the bucket is empty.
        with pytest.raises(SchedulerQuotaError) as excinfo:
            _submit(sched, 3, tenant="alice")
        assert excinfo.value.retry_after > 0
        stats = sched.stats()
        assert stats["quota_rejected"] == 1
        assert stats["tenants"]["alice"]["quota_rejected"] == 1
        assert stats["tenants"]["alice"]["admitted"] == 2
        assert stats["tenants"]["alice"]["coalesced"] == 1

    def test_other_tenants_unaffected(self):
        quotas = TenantQuotas({"alice": (0.0, 1.0)})
        sched = RequestScheduler(lanes=default_lanes(), quotas=quotas)
        _submit(sched, 1, tenant="alice")
        with pytest.raises(SchedulerQuotaError):
            _submit(sched, 2, tenant="alice")
        for order in range(10, 20):
            _submit(sched, order, tenant="bob")


class TestLaneStats:
    def test_stats_expose_per_lane_depth_and_counters(self):
        sched = RequestScheduler(lanes=default_lanes(4))
        _submit(sched, 1, lane=INTERACTIVE)
        _submit(sched, 2, lane=BACKGROUND)
        _submit(sched, 1, lane=INTERACTIVE)  # coalesced
        stats = sched.stats()
        assert set(stats["lanes"]) == {INTERACTIVE, BATCH, BACKGROUND}
        inter = stats["lanes"][INTERACTIVE]
        assert inter["queued"] == 1 and inter["depth"] == 4 and inter["weight"] == 6
        assert inter["admitted"] == 1 and inter["coalesced"] == 1
        assert stats["lanes"][BACKGROUND]["admitted"] == 1


# ------------------------------------------------------------------ HTTP layer
@pytest.fixture(scope="module")
def qos_server(tmp_path_factory):
    from repro.service.api import ServiceConfig
    from repro.service.http import ServiceHTTPServer

    tmp_path = tmp_path_factory.mktemp("qos-http")
    srv = ServiceHTTPServer(
        ("127.0.0.1", 0),
        config=ServiceConfig(
            store_path=str(tmp_path / "qos.db"),
            n_workers=2,
            default_max_time=120.0,
            lanes="default",
            quotas="limited=0:1",
        ),
    )
    srv.start_background()
    yield srv
    srv.stop(drain=False)


def _call(server, method, path, body=None, headers=None):
    data = None if body is None else json.dumps(body).encode("utf-8")
    all_headers = {"Content-Type": "application/json"}
    all_headers.update(headers or {})
    req = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=data,
        method=method,
        headers=all_headers,
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8")), resp.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8") or "{}"), exc.headers


class TestQoSOverHTTP:
    def test_solve_carries_lane_and_tenant(self, qos_server):
        status, payload, _ = _call(
            qos_server,
            "POST",
            "/solve",
            {"order": 12, "wait": True, "lane": "interactive"},
            headers={"X-Repro-Tenant": "acme"},
        )
        assert status == 200 and payload["solved"]
        stats = qos_server.service.stats()
        assert stats["scheduler"]["tenants"].get("acme", {}).get("admitted", 0) >= 0
        assert stats["qos"]["enabled"] is True
        assert stats["qos"]["lanes"] == ["interactive", "batch", "background"]

    def test_unknown_lane_is_400(self, qos_server):
        status, payload, _ = _call(
            qos_server, "POST", "/solve", {"order": 12, "lane": "vip"}
        )
        assert status == 400
        assert "unknown lane" in payload["error"]

    def test_quota_exhaustion_is_429_with_retry_after(self, qos_server):
        # Tenant "limited" has a zero-rate, burst-1 bucket: the first *new*
        # job is admitted, the next distinct one answers 429.  Store and
        # construction tiers would answer before the queue, so force both
        # requests through the scheduler; max_time keeps the search trivial.
        body = {"max_time": 0.2, "tenant": "limited",
                "use_store": False, "use_constructions": False}
        first, _, _ = _call(qos_server, "POST", "/solve", {"order": 29, **body})
        assert first in (200, 202)
        status, payload, headers = _call(
            qos_server, "POST", "/solve", {"order": 31, **body}
        )
        assert status == 429
        assert payload["retry"] is True
        assert int(headers["Retry-After"]) >= 1
        # Other tenants are unaffected.
        ok, _, _ = _call(
            qos_server,
            "POST",
            "/solve",
            {"order": 12, "wait": True},
            headers={"X-Repro-Tenant": "other"},
        )
        assert ok == 200

    def test_stats_exposes_latency_histograms(self, qos_server):
        status, payload, _ = _call(qos_server, "GET", "/stats")
        assert status == 200
        assert "latency" in payload
        assert "overall" in payload["latency"]
        for lane in ("interactive", "batch", "background"):
            assert lane in payload["latency"]
        overall = payload["latency"]["overall"]
        if overall["count"]:
            assert "p99_ms" in overall and "p50_ms" in overall


class TestQoSOverAsyncHTTP:
    """The async front-end speaks the same lane/tenant/429 dialect."""

    @pytest.fixture()
    def async_server(self, tmp_path):
        from repro.service.api import ServiceConfig
        from repro.service.http_async import AsyncServiceHTTPServer

        srv = AsyncServiceHTTPServer(
            ("127.0.0.1", 0),
            config=ServiceConfig(
                store_path=str(tmp_path / "aqos.db"),
                n_workers=2,
                default_max_time=120.0,
                lanes="default",
                quotas="capped=0:1",
            ),
        )
        srv.start_background()
        yield srv
        srv.stop(drain=False)

    def test_quota_429_and_tenant_header(self, async_server):
        body = {"max_time": 0.2, "use_store": False, "use_constructions": False}
        first, _, _ = _call(
            async_server,
            "POST",
            "/solve",
            {"order": 33, **body},
            headers={"X-Repro-Tenant": "capped"},
        )
        assert first in (200, 202)
        status, payload, resp_headers = _call(
            async_server,
            "POST",
            "/solve",
            {"order": 34, **body},
            headers={"X-Repro-Tenant": "capped"},
        )
        assert status == 429
        assert payload["retry"] is True
        assert int(resp_headers["Retry-After"]) >= 1

    def test_batch_item_quota_maps_to_429(self, async_server):
        body = {"max_time": 0.2, "use_store": False, "use_constructions": False}
        status, payload, _ = _call(
            async_server,
            "POST",
            "/solve-batch",
            {
                "items": [{"order": 35, **body}, {"order": 36, **body}],
                "tenant": "capped",
            },
        )
        assert status == 200
        codes = [r.get("code") for r in payload["results"]]
        # The burst-1 bucket admits one distinct item; the other is a
        # per-item 429 slot, not a whole-batch failure.
        assert codes.count(429) == 1
        statuses = [r.get("status") for r in payload["results"]]
        assert "pending" in statuses or "done" in statuses

    def test_unknown_lane_is_400(self, async_server):
        status, payload, _ = _call(
            async_server, "POST", "/solve", {"order": 12, "lane": "vip"}
        )
        assert status == 400
        assert "unknown lane" in payload["error"]


class TestStoreCache:
    def test_read_through_cache_hits_and_evictions(self, tmp_path):
        import numpy as np

        from repro.service.store import SolutionStore

        store = SolutionStore(tmp_path / "cache.db", cache_size=2)
        sols = {
            n: np.array(sol, dtype=np.int64)
            for n, sol in ((3, [0, 2, 1]), (4, [0, 1, 3, 2]), (5, [0, 2, 3, 1, 4]))
        }
        for sol in sols.values():
            store.insert("costas", sol)
        # insert() write-through put 3 entries into a capacity-2 cache.
        snap = store.snapshot()
        assert snap["cache"] == {"entries": 2, "capacity": 2}
        assert snap["cache_evictions"] >= 1
        before = store.snapshot()["cache_hits"]
        got = store.get("costas", 5)
        assert got is not None
        assert store.snapshot()["cache_hits"] == before + 1
        # Cache hits must not bump the persistent per-row counter.
        assert store.snapshot()["persistent_hits"] == 0
        # An evicted order falls back to disk and repopulates the cache.
        got3 = store.get("costas", 3)
        assert got3 is not None and list(got3) == [0, 2, 1]

    def test_cache_disabled_by_default(self, tmp_path):
        import numpy as np

        from repro.service.store import SolutionStore

        store = SolutionStore(tmp_path / "plain.db")
        store.insert("costas", np.array([0, 2, 1], dtype=np.int64))
        assert store.get("costas", 3) is not None
        snap = store.snapshot()
        assert snap["cache"] == {"entries": 0, "capacity": 0}
        assert snap["cache_hits"] == 0
        # Disk hits still bump the persistent per-row counter.
        assert snap["persistent_hits"] == 1

    def test_cached_arrays_are_read_only(self, tmp_path):
        import numpy as np

        from repro.service.store import SolutionStore

        store = SolutionStore(tmp_path / "ro.db", cache_size=4)
        store.insert("costas", np.array([0, 2, 1], dtype=np.int64))
        got = store.get("costas", 3)
        got2 = store.get("costas", 3)
        assert got is not None and got2 is not None
        # Mutating one caller's view must not corrupt the shared cache.
        if not got.flags.writeable:
            with pytest.raises((ValueError, RuntimeError)):
                got[0] = 99
        else:  # a defensive copy is equally acceptable
            got[0] = 99
            assert list(got2) != list(got) or got2 is not got
