"""Tests for ASParameters validation and presets."""

from __future__ import annotations

import pytest

from repro.core.params import ASParameters


class TestValidation:
    def test_defaults_are_valid(self):
        params = ASParameters()
        assert params.tabu_tenure >= 1
        assert 0 <= params.plateau_probability <= 1

    @pytest.mark.parametrize(
        "field, value",
        [
            ("tabu_tenure", 0),
            ("reset_limit", 0),
            ("reset_percentage", 0.0),
            ("reset_percentage", 1.5),
            ("plateau_probability", -0.1),
            ("plateau_probability", 1.1),
            ("local_min_accept_probability", -0.2),
            ("local_min_accept_probability", 2.0),
            ("restart_limit", 0),
            ("max_restarts", -1),
            ("max_iterations", 0),
            ("check_period", 0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            ASParameters(**{field: value})

    def test_frozen(self):
        params = ASParameters()
        with pytest.raises(Exception):
            params.tabu_tenure = 10  # type: ignore[misc]

    def test_with_updates_revalidates(self):
        params = ASParameters()
        updated = params.with_updates(plateau_probability=0.5)
        assert updated.plateau_probability == 0.5
        assert params.plateau_probability != 0.5 or params is not updated
        with pytest.raises(ValueError):
            params.with_updates(plateau_probability=3.0)


class TestPresets:
    def test_for_costas_defaults(self):
        params = ASParameters.for_costas(16)
        assert params.reset_limit == 1
        assert params.reset_percentage == pytest.approx(0.05)
        assert params.plateau_probability == pytest.approx(0.9)
        assert params.restart_limit is not None and params.restart_limit > 0
        assert not params.clear_tabu_on_reset

    def test_for_costas_restart_grows_with_order(self):
        assert (
            ASParameters.for_costas(16).restart_limit
            > ASParameters.for_costas(12).restart_limit
        )

    def test_for_costas_overrides(self):
        params = ASParameters.for_costas(10, plateau_probability=0.5, max_iterations=100)
        assert params.plateau_probability == 0.5
        assert params.max_iterations == 100

    def test_for_costas_rejects_tiny_orders(self):
        with pytest.raises(ValueError):
            ASParameters.for_costas(2)

    def test_for_problem_size(self):
        params = ASParameters.for_problem_size(100)
        assert params.tabu_tenure == 10
        assert params.reset_limit == 10
        with pytest.raises(ValueError):
            ASParameters.for_problem_size(1)
