"""Tests for the coalescing priority scheduler (no processes involved)."""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError

import pytest

from repro.service.faults import DeadlineExceededError
from repro.service.scheduler import (
    RequestScheduler,
    SchedulerSaturatedError,
    Ticket,
)


def _submit(sched: RequestScheduler, order: int, priority: int = 0) -> Ticket:
    return sched.submit(("costas", order), {"order": order}, priority=priority)


class TestCoalescing:
    def test_identical_requests_share_one_job(self):
        sched = RequestScheduler()
        tickets = [_submit(sched, 18) for _ in range(5)]
        assert len({id(t.job) for t in tickets}) == 1
        assert sched.pending_jobs() == 1
        job = sched.next_job(timeout=0)
        assert job is tickets[0].job
        assert job.width == 5
        # No second job exists.
        assert sched.next_job(timeout=0) is None

    def test_all_coalesced_tickets_receive_the_result(self):
        sched = RequestScheduler()
        tickets = [_submit(sched, 18) for _ in range(4)]
        job = sched.next_job(timeout=0)
        sched.complete(job, {"answer": 42})
        assert all(t.result(timeout=1) == {"answer": 42} for t in tickets)

    def test_running_jobs_still_coalesce(self):
        sched = RequestScheduler()
        first = _submit(sched, 18)
        job = sched.next_job(timeout=0)
        late = _submit(sched, 18)  # joins while RUNNING
        assert late.job is job
        sched.complete(job, "done")
        assert first.result(0.1) == "done" and late.result(0.1) == "done"

    def test_distinct_instances_do_not_coalesce(self):
        sched = RequestScheduler()
        _submit(sched, 18)
        _submit(sched, 19)
        assert sched.pending_jobs() == 2

    def test_completed_jobs_do_not_absorb_new_requests(self):
        sched = RequestScheduler()
        t1 = _submit(sched, 18)
        job = sched.next_job(timeout=0)
        sched.complete(job, "x")
        t2 = _submit(sched, 18)
        assert t2.job is not t1.job

    def test_failure_propagates_to_every_ticket(self):
        sched = RequestScheduler()
        tickets = [_submit(sched, 20) for _ in range(3)]
        job = sched.next_job(timeout=0)
        sched.fail(job, RuntimeError("boom"))
        for t in tickets:
            with pytest.raises(RuntimeError, match="boom"):
                t.result(timeout=1)


class TestPriority:
    def test_higher_priority_pops_first(self):
        sched = RequestScheduler()
        _submit(sched, 10, priority=0)
        _submit(sched, 11, priority=5)
        _submit(sched, 12, priority=1)
        orders = [sched.next_job(timeout=0).key[1] for _ in range(3)]
        assert orders == [11, 12, 10]

    def test_fifo_within_a_priority(self):
        sched = RequestScheduler()
        for order in (30, 31, 32):
            _submit(sched, order)
        assert [sched.next_job(timeout=0).key[1] for _ in range(3)] == [30, 31, 32]

    def test_coalesced_join_bumps_queued_priority(self):
        sched = RequestScheduler()
        _submit(sched, 10, priority=0)
        _submit(sched, 11, priority=1)
        _submit(sched, 10, priority=9)  # join bumps order 10 above order 11
        assert sched.next_job(timeout=0).key[1] == 10
        assert sched.next_job(timeout=0).key[1] == 11


class TestBackpressure:
    def test_saturated_queue_rejects_new_jobs(self):
        sched = RequestScheduler(max_depth=2)
        _submit(sched, 10)
        _submit(sched, 11)
        with pytest.raises(SchedulerSaturatedError):
            _submit(sched, 12)
        assert sched.stats()["rejected"] == 1

    def test_coalesced_joins_bypass_the_depth_limit(self):
        sched = RequestScheduler(max_depth=1)
        _submit(sched, 10)
        _submit(sched, 10)  # same instance: admitted
        with pytest.raises(SchedulerSaturatedError):
            _submit(sched, 11)

    def test_running_jobs_free_queue_slots(self):
        sched = RequestScheduler(max_depth=1)
        _submit(sched, 10)
        sched.next_job(timeout=0)
        _submit(sched, 11)  # fits: the first job is now running

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            RequestScheduler(max_depth=0)


class TestCancellation:
    def test_cancel_last_ticket_removes_queued_job(self):
        sched = RequestScheduler()
        ticket = _submit(sched, 10)
        assert sched.cancel(ticket)
        assert sched.pending_jobs() == 0
        assert sched.next_job(timeout=0) is None
        with pytest.raises(CancelledError):
            ticket.result(timeout=0)

    def test_cancel_one_of_many_keeps_the_job(self):
        sched = RequestScheduler()
        t1 = _submit(sched, 10)
        t2 = _submit(sched, 10)
        assert sched.cancel(t1)
        job = sched.next_job(timeout=0)
        assert job is t2.job and job.width == 1
        sched.complete(job, "ok")
        assert t2.result(0.1) == "ok"
        with pytest.raises(CancelledError):
            t1.result(timeout=0)

    def test_cancel_running_job_fires_callback(self):
        aborted = []
        sched = RequestScheduler(on_cancel_running=aborted.append)
        ticket = _submit(sched, 10)
        job = sched.next_job(timeout=0)
        assert sched.cancel(ticket)
        assert aborted == [job]

    def test_new_request_after_cancelling_running_job_gets_fresh_job(self):
        """A fresh request must not coalesce onto a running job whose last
        ticket was cancelled — it would inherit a CancelledError it never
        asked for when the abort lands."""
        sched = RequestScheduler(on_cancel_running=lambda job: None)
        t1 = _submit(sched, 10)
        job = sched.next_job(timeout=0)
        sched.cancel(t1)
        t2 = _submit(sched, 10)
        assert t2.job is not job
        # The aborted job's failure settles only its own (cancelled) tickets.
        sched.fail(job, CancelledError())
        assert not t2.future.done()
        sched.complete(sched.next_job(timeout=0), "fresh")
        assert t2.result(0.1) == "fresh"

    def test_cancel_after_completion_is_a_noop(self):
        sched = RequestScheduler()
        ticket = _submit(sched, 10)
        sched.complete(sched.next_job(timeout=0), "ok")
        assert not sched.cancel(ticket)
        assert ticket.result(0.1) == "ok"

    def test_cancelled_queued_job_is_skipped_on_pop(self):
        sched = RequestScheduler()
        t1 = _submit(sched, 10, priority=5)
        _submit(sched, 11, priority=0)
        sched.cancel(t1)
        assert sched.next_job(timeout=0).key[1] == 11


class TestLifecycleAndThreads:
    def test_close_refuses_new_submissions(self):
        sched = RequestScheduler()
        sched.close()
        with pytest.raises(RuntimeError):
            _submit(sched, 10)

    def test_next_job_unblocks_on_close(self):
        sched = RequestScheduler()
        got = []

        def consumer():
            got.append(sched.next_job(timeout=5))

        thread = threading.Thread(target=consumer)
        thread.start()
        sched.close()
        thread.join(timeout=2)
        assert not thread.is_alive()
        assert got == [None]

    def test_blocked_consumer_wakes_on_submit(self):
        sched = RequestScheduler()
        got = []
        thread = threading.Thread(target=lambda: got.append(sched.next_job(timeout=5)))
        thread.start()
        _submit(sched, 18)
        thread.join(timeout=2)
        assert got and got[0] is not None and got[0].key[1] == 18

    def test_stats_shape(self):
        sched = RequestScheduler(max_depth=4)
        _submit(sched, 10)
        _submit(sched, 10)
        stats = sched.stats()
        assert stats["submitted"] == 2
        assert stats["coalesced"] == 1
        assert stats["queued"] == 1
        assert stats["max_depth"] == 4

    def test_concurrent_submitters_coalesce_exactly(self):
        sched = RequestScheduler()
        tickets = []
        lock = threading.Lock()

        def worker():
            t = _submit(sched, 18)
            with lock:
                tickets.append(t)

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tickets) == 16
        assert len({id(t.job) for t in tickets}) == 1
        assert sched.stats()["submitted"] == 16
        assert sched.stats()["coalesced"] == 15


class TestBatchSubmit:
    @staticmethod
    def _entries(orders):
        return [(("costas", o), {"order": o}, 0) for o in orders]

    def test_batch_admits_aligned_tickets(self):
        sched = RequestScheduler()
        tickets = sched.submit_batch(self._entries([18, 19, 20]))
        assert len(tickets) == 3
        assert all(isinstance(t, Ticket) for t in tickets)
        assert [t.job.payload["order"] for t in tickets] == [18, 19, 20]
        assert sched.pending_jobs() == 3

    def test_batch_coalesces_identical_items_and_joins_inflight(self):
        sched = RequestScheduler()
        first = _submit(sched, 18)
        tickets = sched.submit_batch(self._entries([18, 18, 19]))
        # The two 18s join the existing job; only the 19 is a new job.
        assert tickets[0].job is first.job and tickets[1].job is first.job
        assert tickets[2].job is not first.job
        assert sched.pending_jobs() == 2
        assert sched.stats()["coalesced"] == 2
        job = sched.next_job(timeout=0)
        sched.complete(job, "done")
        assert first.result(timeout=1) == "done"
        assert tickets[0].result(timeout=1) == "done"

    def test_batch_saturation_is_per_item(self):
        sched = RequestScheduler(max_depth=2)
        outcomes = sched.submit_batch(self._entries([18, 19, 20, 21, 18]))
        assert isinstance(outcomes[0], Ticket)
        assert isinstance(outcomes[1], Ticket)
        assert isinstance(outcomes[2], SchedulerSaturatedError)
        assert isinstance(outcomes[3], SchedulerSaturatedError)
        # Coalescing joins are always admitted, even at max depth.
        assert isinstance(outcomes[4], Ticket)
        assert outcomes[4].job is outcomes[0].job
        assert sched.stats()["rejected"] == 2

    def test_batch_wakes_blocked_consumers(self):
        sched = RequestScheduler()
        got = []

        def consumer():
            got.append(sched.next_job(timeout=5.0))

        threads = [threading.Thread(target=consumer) for _ in range(2)]
        for t in threads:
            t.start()
        sched.submit_batch(self._entries([18, 19]))
        for t in threads:
            t.join(timeout=6.0)
        assert len(got) == 2 and all(j is not None for j in got)
        assert {j.payload["order"] for j in got} == {18, 19}

    def test_batch_priority_bump_on_join(self):
        sched = RequestScheduler()
        low = _submit(sched, 18, priority=0)
        _submit(sched, 19, priority=5)
        sched.submit_batch([(("costas", 18), {"order": 18}, 9)])
        # The joined 18 was bumped above the priority-5 job.
        assert sched.next_job(timeout=0) is low.job

    def test_batch_after_close_raises(self):
        sched = RequestScheduler()
        sched.close()
        with pytest.raises(RuntimeError):
            sched.submit_batch(self._entries([18]))


class TestBatchMixedDeadlines:
    """Pin the loosest-deadline rule for coalesced batch items.

    The job's deadline is the loosest of its tickets': a later joiner's
    tighter patience must never cut short an earlier joiner's budget, one
    unbounded join makes the job unbounded, and the rule composes with the
    priority bump (both act on the same coalesced join).
    """

    @staticmethod
    def _entry(order, priority=0, deadline_at=None):
        return (("costas", order), {"order": order}, priority, deadline_at)

    def test_batch_join_takes_the_loosest_deadline(self):
        sched = RequestScheduler()
        now = time.time()
        first = sched.submit(
            ("costas", 18), {"order": 18}, deadline_at=now + 100.0
        )
        outcomes = sched.submit_batch(
            [
                self._entry(18, deadline_at=now + 5.0),  # tighter: ignored
                self._entry(18, deadline_at=now + 500.0),  # looser: wins
            ]
        )
        assert all(isinstance(t, Ticket) for t in outcomes)
        assert outcomes[0].job is first.job
        assert first.job.deadline_at == pytest.approx(now + 500.0)

    def test_batch_unbounded_join_clears_the_deadline(self):
        sched = RequestScheduler()
        now = time.time()
        first = sched.submit(
            ("costas", 18), {"order": 18}, deadline_at=now + 5.0
        )
        sched.submit_batch([self._entry(18, deadline_at=None)])
        assert first.job.deadline_at is None
        # A later bounded join cannot re-tighten an unbounded job.
        sched.submit_batch([self._entry(18, deadline_at=now + 1.0)])
        assert first.job.deadline_at is None

    def test_batch_mixed_deadlines_across_distinct_keys(self):
        sched = RequestScheduler()
        now = time.time()
        outcomes = sched.submit_batch(
            [
                self._entry(18, deadline_at=now + 10.0),
                self._entry(19, deadline_at=None),
                self._entry(18, deadline_at=now + 60.0),
            ]
        )
        job18, job19 = outcomes[0].job, outcomes[1].job
        assert outcomes[2].job is job18
        assert job18.deadline_at == pytest.approx(now + 60.0)
        assert job19.deadline_at is None

    def test_deadline_loosening_and_priority_bump_compose(self):
        sched = RequestScheduler()
        now = time.time()
        low = sched.submit(
            ("costas", 18), {"order": 18}, priority=0, deadline_at=now + 5.0
        )
        sched.submit(("costas", 19), {"order": 19}, priority=5)
        # One batch join both bumps the priority and loosens the deadline.
        sched.submit_batch([self._entry(18, priority=9, deadline_at=now + 500.0)])
        assert low.job.priority == 9
        assert low.job.deadline_at == pytest.approx(now + 500.0)
        # The bump wins the next pop, and the stale low-priority heap entry
        # is skipped rather than double-popping the job.
        assert sched.next_job(timeout=0) is low.job
        second = sched.next_job(timeout=0)
        assert second is not None and second.payload["order"] == 19
        assert sched.next_job(timeout=0) is None

    def test_expired_batch_job_fails_at_pop_with_loosest_rule_applied(self):
        sched = RequestScheduler()
        now = time.time()
        # Both tickets carry already-passed deadlines; the job expires at
        # pop time and every coalesced ticket sees DeadlineExceededError.
        outcomes = sched.submit_batch(
            [
                self._entry(18, deadline_at=now - 10.0),
                self._entry(18, deadline_at=now - 5.0),
            ]
        )
        assert outcomes[1].job is outcomes[0].job
        assert sched.next_job(timeout=0) is None
        with pytest.raises(DeadlineExceededError):
            outcomes[0].result(timeout=1)
        with pytest.raises(DeadlineExceededError):
            outcomes[1].result(timeout=1)
        assert sched.stats()["expired"] == 1
