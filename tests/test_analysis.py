"""Tests for the statistics, speed-up and time-to-target analysis modules."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.speedup import SpeedupPoint, efficiency, ideal_speedup, speedup_series
from repro.analysis.stats import best_to_average_ratio, summarize, summarize_results
from repro.analysis.tables import format_paper_table, format_table
from repro.analysis.ttt import (
    ExponentialFit,
    empirical_cdf,
    fit_shifted_exponential,
    ks_distance,
    min_of_k_expectation,
    predicted_speedup,
    sample_min_of_k,
    time_to_target_curve,
)
from repro.core.result import SolveResult
from repro.exceptions import AnalysisError


class TestSummaries:
    def test_summarize_basic(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.total == pytest.approx(10.0)
        assert summary.best_to_average_ratio == pytest.approx(2.5)
        assert set(summary.as_dict()) == {
            "count", "mean", "median", "min", "max", "std", "total",
        }

    def test_summarize_single_value_std_zero(self):
        assert summarize([3.0]).std == 0.0

    def test_summarize_rejects_bad_input(self):
        with pytest.raises(AnalysisError):
            summarize([])
        with pytest.raises(AnalysisError):
            summarize([1.0, float("nan")])

    def test_summarize_results_filters_unsolved(self):
        results = [
            SolveResult(solved=True, configuration=[0, 1], cost=0, wall_time=1.0),
            SolveResult(solved=False, configuration=[0, 1], cost=3, wall_time=9.0),
        ]
        summary = summarize_results(results, metric="wall_time")
        assert summary.count == 1
        both = summarize_results(results, metric="wall_time", solved_only=False)
        assert both.count == 2
        with pytest.raises(AnalysisError):
            summarize_results(results, metric="nonexistent")
        with pytest.raises(AnalysisError):
            summarize_results([], metric="wall_time")

    def test_best_to_average_ratio_fallback(self):
        # Minimum time is zero -> fall back to the iteration counts.
        assert best_to_average_ratio([0.0, 1.0], fallback=[10, 30]) == pytest.approx(2.0)
        assert best_to_average_ratio([0.0, 1.0]) == float("inf")


class TestSpeedup:
    def test_series_relative_to_smallest_core_count(self):
        series = speedup_series({32: 8.0, 64: 4.0, 128: 2.0})
        assert [p.cores for p in series] == [32, 64, 128]
        assert [p.speedup for p in series] == [1.0, 2.0, 4.0]
        assert [p.ideal for p in series] == [1.0, 2.0, 4.0]
        assert all(p.efficiency == pytest.approx(1.0) for p in series)

    def test_explicit_reference(self):
        series = speedup_series({1: 100.0, 10: 20.0}, reference_cores=1)
        assert series[1].speedup == pytest.approx(5.0)
        assert series[1].efficiency == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            speedup_series({})
        with pytest.raises(AnalysisError):
            speedup_series({4: 0.0})
        with pytest.raises(AnalysisError):
            speedup_series({0: 1.0})
        with pytest.raises(AnalysisError):
            speedup_series({4: 1.0}, reference_cores=8)

    def test_ideal_and_efficiency_helpers(self):
        ideal = ideal_speedup([32, 64, 256])
        assert ideal == {32: 1.0, 64: 2.0, 256: 8.0}
        eff = efficiency([SpeedupPoint(cores=64, time=1.0, speedup=1.5, ideal=2.0)])
        assert eff == {64: 0.75}
        with pytest.raises(AnalysisError):
            ideal_speedup([])
        with pytest.raises(AnalysisError):
            efficiency([])


class TestTimeToTarget:
    def test_empirical_cdf_monotone(self):
        xs, ps = empirical_cdf([5.0, 1.0, 3.0])
        assert list(xs) == [1.0, 3.0, 5.0]
        assert np.all(np.diff(ps) > 0)
        assert 0 < ps[0] < ps[-1] < 1
        with pytest.raises(AnalysisError):
            empirical_cdf([])

    def test_time_to_target_curve(self):
        grid, probs = time_to_target_curve([1.0, 2.0, 3.0, 4.0], targets=10)
        assert grid.shape == probs.shape == (10,)
        assert probs[-1] == pytest.approx(1.0)
        assert np.all(np.diff(probs) >= 0)
        with pytest.raises(AnalysisError):
            time_to_target_curve([1.0], targets=1)

    def test_fit_recovers_synthetic_exponential(self):
        rng = np.random.default_rng(0)
        sample = 5.0 + rng.exponential(20.0, size=4000)
        fit = fit_shifted_exponential(sample)
        assert fit.shift == pytest.approx(5.0, abs=1.0)
        assert fit.scale == pytest.approx(20.0, rel=0.15)
        assert ks_distance(sample, fit) < 0.05

    def test_fit_validation_and_degenerate_sample(self):
        with pytest.raises(AnalysisError):
            fit_shifted_exponential([1.0])
        with pytest.raises(AnalysisError):
            fit_shifted_exponential([-1.0, 2.0])
        fit = fit_shifted_exponential([2.0, 2.0, 2.0])
        assert fit.scale > 0

    def test_exponential_fit_methods(self):
        fit = ExponentialFit(shift=2.0, scale=10.0)
        assert fit.mean == pytest.approx(12.0)
        assert fit.cdf(2.0) == pytest.approx(0.0)
        assert fit.cdf(1.0) == pytest.approx(0.0)
        assert 0 < fit.cdf(12.0) < 1
        assert fit.quantile(0.0) == pytest.approx(2.0)
        mid = fit.quantile(0.5)
        assert fit.cdf(mid) == pytest.approx(0.5)
        with pytest.raises(AnalysisError):
            fit.quantile(1.0)
        half = fit.min_of_k(2)
        assert half.scale == pytest.approx(5.0)
        with pytest.raises(AnalysisError):
            fit.min_of_k(0)

    @given(st.integers(min_value=1, max_value=4096))
    def test_predicted_speedup_bounds(self, k):
        fit = ExponentialFit(shift=1.0, scale=100.0)
        speedup = predicted_speedup(fit, k)
        assert 1.0 <= speedup <= k + 1e-9
        # Saturation ceiling: (shift + scale) / shift.
        assert speedup <= fit.mean / fit.shift + 1e-9

    def test_predicted_speedup_linear_when_shift_zero(self):
        fit = ExponentialFit(shift=0.0, scale=50.0)
        assert predicted_speedup(fit, 64) == pytest.approx(64.0)
        assert min_of_k_expectation(fit, 64) == pytest.approx(50.0 / 64)

    def test_sample_min_of_k(self):
        rng = np.random.default_rng(1)
        pool = rng.exponential(100.0, size=500)
        mins = sample_min_of_k(pool, 32, 200, rng)
        assert mins.shape == (200,)
        assert mins.mean() < pool.mean()
        with pytest.raises(AnalysisError):
            sample_min_of_k([], 2, 2)
        with pytest.raises(AnalysisError):
            sample_min_of_k(pool, 0, 2)


class TestTables:
    def test_format_table_alignment_and_none(self):
        text = format_table(
            ["a", "bb"], [[1, None], [2.5, "x"]], float_format="{:.1f}", title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "-" in lines[2]
        assert "-" in lines[3]  # None rendered as '-'
        assert "2.5" in text

    def test_format_paper_table_structure(self):
        stats = {
            21: {"32": {"avg": 160.42, "med": 114.06}, "64": {"avg": 81.72}},
            22: {"32": {"avg": 501.23}},
        }
        text = format_paper_table(
            [21, 22], stats, ["32", "64"], stat_rows=("avg", "med")
        )
        assert "21" in text and "22" in text
        assert "160.42" in text
        # Missing cells are dashes.
        assert "-" in text
