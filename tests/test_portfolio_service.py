"""End-to-end tests for heterogeneous portfolios across the stack:
multi-walk driver, worker pool, service facade and HTTP API.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.core.params import ASParameters
from repro.costas.array import is_costas
from repro.exceptions import SolverError
from repro.experiments.base import costas_factory
from repro.parallel.multiwalk import MultiWalkSolver
from repro.service.api import ServiceConfig, SolverService


class TestMultiWalkPortfolio:
    def test_solver_spec_selects_strategy(self):
        solver = MultiWalkSolver(
            costas_factory(8), solver="tabu", n_workers=1, seed_root=0
        )
        outcome = solver.solve(max_time=60.0)
        assert outcome.solved
        assert outcome.best.solver == "tabu-search"

    def test_round_robin_assignment(self):
        solver = MultiWalkSolver(
            costas_factory(9),
            ASParameters.for_costas(9),
            solver="adaptive+tabu",
            n_workers=4,
            seed_root=1,
        )
        assert solver.portfolio == "adaptive+tabu"
        assert solver._walk_spec(0)["name"] == "adaptive"
        assert solver._walk_spec(1)["name"] == "tabu"
        assert solver._walk_spec(2)["name"] == "adaptive"
        assert solver._walk_spec(3)["name"] == "tabu"

    def test_heterogeneous_walks_race_and_all_report(self):
        solver = MultiWalkSolver(
            costas_factory(9),
            ASParameters.for_costas(9),
            solver="adaptive+tabu",
            n_workers=2,
            seed_root=7,
        )
        outcome = solver.solve(max_time=120.0)
        assert outcome.solved
        assert is_costas(outcome.best.configuration)
        # Both strategies participated (losers report partial statistics too).
        assert outcome.solvers == ["adaptive-search", "tabu-search"]

    def test_unknown_solver_fails_at_construction(self):
        with pytest.raises(SolverError, match="unknown solver"):
            MultiWalkSolver(costas_factory(9), solver="noop", n_workers=2)

    def test_n_workers_raised_to_portfolio_size(self):
        # Every portfolio member is guaranteed a walk: asking for fewer
        # workers than members widens the pool instead of silently dropping
        # the round-robin tail.
        solver = MultiWalkSolver(
            costas_factory(9), solver="local-search", n_workers=2, seed_root=0
        )
        assert solver.n_workers == 4
        assert [solver._walk_spec(i)["name"] for i in range(4)] == [
            "adaptive", "tabu", "dialectic", "random-restart",
        ]


class TestServiceSolverSelection:
    def test_submit_with_named_solver_runs_it(self):
        config = ServiceConfig(
            n_workers=2, use_constructions=False, default_max_time=60.0
        )
        with SolverService(config) as service:
            response = service.submit(9, solver="tabu", use_store=False).result(
                timeout=90
            )
            assert response.solved
            assert response.source == "search"
            assert response.detail["solver"] == "tabu-search"
            stats = service.stats()
            assert stats["solvers"]["requests"] == {"tabu": 1}
            assert stats["solvers"]["solved"] == {"tabu-search": 1}

    def test_submit_portfolio_gets_one_walk_per_member(self):
        config = ServiceConfig(
            n_workers=2, use_constructions=False, default_max_time=60.0
        )
        with SolverService(config) as service:
            response = service.submit(
                9, solver="adaptive+tabu", use_store=False
            ).result(timeout=90)
            assert response.solved
            # walks_per_job is 1, but the portfolio has 2 members: both raced.
            assert response.detail["walks"] == 2
            assert response.detail["solver"] in ("adaptive-search", "tabu-search")

    def test_unknown_solver_rejected_before_queueing(self):
        config = ServiceConfig(n_workers=1, use_constructions=False)
        with SolverService(config) as service:
            with pytest.raises(SolverError, match="unknown solver"):
                service.submit(9, solver="noop")
            assert service.stats()["searches_dispatched"] == 0

    def test_unknown_default_solver_fails_at_construction(self):
        with pytest.raises(SolverError, match="unknown solver"):
            SolverService(ServiceConfig(default_solver="typo"))

    def test_wide_portfolio_on_small_pool_completes(self):
        # A 4-member portfolio on a 2-worker pool must throttle through the
        # slot gate (permits capped at the pool), not deadlock or oversubscribe.
        config = ServiceConfig(
            n_workers=2, use_constructions=False, default_max_time=60.0
        )
        with SolverService(config) as service:
            response = service.submit(
                8, solver="local-search", use_store=False
            ).result(timeout=120)
            assert response.solved
            assert response.detail["walks"] == 4

    def test_different_solvers_do_not_coalesce(self):
        key_a = SolverService._instance_key(
            "costas", 12, {"solver": {"name": "adaptive", "params": None}, "max_time": 60}
        )
        key_b = SolverService._instance_key(
            "costas", 12, {"solver": {"name": "tabu", "params": None}, "max_time": 60}
        )
        assert key_a != key_b

    def test_same_solver_same_params_coalesce(self):
        payload = {"solver": {"name": "tabu", "params": {"tenure": 4}}, "max_time": 60}
        assert SolverService._instance_key(
            "costas", 12, dict(payload)
        ) == SolverService._instance_key("costas", 12, dict(payload))


class TestHTTPSolverRoundTrip:
    @pytest.fixture()
    def server(self):
        from repro.service.http import ServiceHTTPServer

        server = ServiceHTTPServer(
            ("127.0.0.1", 0),
            config=ServiceConfig(
                n_workers=2, use_constructions=False, default_max_time=60.0
            ),
        )
        server.start_background()
        yield server
        server.stop(drain=False)

    @staticmethod
    def _call(server, method, path, body=None):
        data = None if body is None else json.dumps(body).encode()
        req = urllib.request.Request(
            f"http://127.0.0.1:{server.port}{path}", data=data, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=90) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read() or b"{}")

    def test_post_solve_with_solver_round_trips(self, server):
        status, payload = self._call(
            server,
            "POST",
            "/solve",
            {"order": 9, "solver": "tabu", "wait": True, "use_store": False},
        )
        assert status == 200
        assert payload["solved"]
        assert payload["source"] == "search"
        assert payload["detail"]["solver"] == "tabu-search"
        assert is_costas(payload["solution"])

    def test_post_solve_with_portfolio_round_trips(self, server):
        status, payload = self._call(
            server,
            "POST",
            "/solve",
            {"order": 10, "solver": "adaptive+tabu", "wait": True, "use_store": False},
        )
        assert status == 200
        assert payload["solved"]
        assert payload["detail"]["walks"] == 2
        assert payload["detail"]["solver"] in ("adaptive-search", "tabu-search")
        assert is_costas(payload["solution"])

    def test_post_solve_with_spec_object_round_trips(self, server):
        status, payload = self._call(
            server,
            "POST",
            "/solve",
            {
                "order": 9,
                "solver": {"name": "tabu", "params": {"tenure": 6}},
                "wait": True,
                "use_store": False,
            },
        )
        assert status == 200
        assert payload["solved"]
        assert payload["detail"]["solver"] == "tabu-search"

    def test_unknown_solver_answers_400(self, server):
        status, payload = self._call(
            server, "POST", "/solve", {"order": 9, "solver": "noop"}
        )
        assert status == 400
        assert "unknown solver" in payload["error"]

    def test_invalid_params_answer_400(self, server):
        status, payload = self._call(
            server,
            "POST",
            "/solve",
            {"order": 9, "solver": {"name": "tabu", "params": {"tenure": [8]}}},
        )
        assert status == 400
        assert "invalid parameters" in payload["error"]

    def test_stats_report_per_solver_counters(self, server):
        self._call(
            server,
            "POST",
            "/solve",
            {"order": 9, "solver": "tabu", "wait": True, "use_store": False},
        )
        self._call(
            server,
            "POST",
            "/solve",
            {"order": 9, "wait": True, "use_store": False},
        )
        status, stats = self._call(server, "GET", "/stats")
        assert status == 200
        assert stats["solvers"]["requests"]["tabu"] == 1
        assert stats["solvers"]["requests"]["adaptive"] == 1
        assert sum(stats["solvers"]["solved"].values()) >= 1
        assert stats["config"]["default_solver"] == "adaptive"
