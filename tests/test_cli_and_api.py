"""Tests for the command-line interface and the top-level convenience API."""

from __future__ import annotations

import json

import pytest

import repro
from repro.cli import build_parser, main
from repro.costas.array import is_costas
from repro.costas.database import KNOWN_COSTAS_COUNTS


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_each_command(self):
        parser = build_parser()
        assert parser.parse_args(["solve", "10"]).order == 10
        assert parser.parse_args(["parallel", "10", "--workers", "2"]).workers == 2
        assert parser.parse_args(["construct", "12", "--method", "welch"]).method == "welch"
        assert parser.parse_args(["enumerate", "6", "--classes"]).classes
        args = parser.parse_args(["experiment", "table1", "--scale", "smoke"])
        assert args.identifier == "table1" and args.scale == "smoke"
        assert parser.parse_args(["list-experiments"]).command == "list-experiments"


class TestCommands:
    def test_solve_command(self, capsys):
        code = main(["solve", "9", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "permutation (1-based)" in out
        assert "solved" in out

    def test_solve_quiet_outputs_only_permutation(self, capsys):
        code = main(["solve", "8", "--seed", "1", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out.strip()
        values = json.loads(out.replace("'", '"'))
        assert sorted(values) == list(range(1, 9))

    def test_solve_basic_model(self, capsys):
        assert main(["solve", "8", "--seed", "2", "--basic"]) == 0

    def test_construct_command(self, capsys):
        assert main(["construct", "10"]) == 0
        out = capsys.readouterr().out
        assert "permutation (1-based)" in out

    def test_construct_failure_exit_code(self, capsys):
        assert main(["construct", "32"]) == 1
        assert "error" in capsys.readouterr().err

    def test_enumerate_command(self, capsys):
        assert main(["enumerate", "6", "--classes"]) == 0
        out = capsys.readouterr().out
        assert f"{KNOWN_COSTAS_COUNTS[6]} Costas arrays" in out
        assert "matches enumeration" in out
        assert "equivalence classes" in out

    def test_enumerate_print(self, capsys):
        assert main(["enumerate", "4", "--print"]) == 0
        out = capsys.readouterr().out
        assert out.count("[") >= KNOWN_COSTAS_COUNTS[4]

    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "figure4" in out

    def test_experiment_command_json(self, capsys):
        assert main(["experiment", "table1", "--scale", "smoke", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "table1"
        assert payload["rows"]

    def test_parallel_command(self, capsys):
        assert main(["parallel", "9", "--workers", "1", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "walks" in out


class TestConvenienceApi:
    def test_solve_costas(self):
        result = repro.solve_costas(10, seed=0)
        assert result.solved
        array = result.as_costas_array()
        assert array.order == 10
        assert is_costas(array.to_array())

    def test_solve_costas_model_options(self):
        result = repro.solve_costas(8, seed=0, err_weight="constant", use_chang=False)
        assert result.solved

    def test_as_costas_array_requires_solution(self):
        from repro.core import ASParameters

        result = repro.solve_costas(
            12, seed=0, params=ASParameters.for_costas(12, max_iterations=1)
        )
        if not result.solved:
            with pytest.raises(ValueError):
                result.as_costas_array()

    def test_version_string(self):
        assert repro.__version__
