"""Tests for the command-line interface and the top-level convenience API."""

from __future__ import annotations

import json

import pytest

import repro
from repro.cli import build_parser, main
from repro.costas.array import is_costas
from repro.costas.database import KNOWN_COSTAS_COUNTS


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_each_command(self):
        parser = build_parser()
        assert parser.parse_args(["solve", "10"]).order == 10
        assert parser.parse_args(["parallel", "10", "--workers", "2"]).workers == 2
        assert parser.parse_args(["construct", "12", "--method", "welch"]).method == "welch"
        assert parser.parse_args(["enumerate", "6", "--classes"]).classes
        args = parser.parse_args(["experiment", "table1", "--scale", "smoke"])
        assert args.identifier == "table1" and args.scale == "smoke"
        assert parser.parse_args(["list-experiments"]).command == "list-experiments"


class TestCommands:
    def test_solve_command(self, capsys):
        code = main(["solve", "9", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "permutation (1-based)" in out
        assert "solved" in out

    def test_solve_quiet_outputs_only_permutation(self, capsys):
        code = main(["solve", "8", "--seed", "1", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out.strip()
        values = json.loads(out.replace("'", '"'))
        assert sorted(values) == list(range(1, 9))

    def test_solve_basic_model(self, capsys):
        assert main(["solve", "8", "--seed", "2", "--basic"]) == 0

    def test_construct_command(self, capsys):
        assert main(["construct", "10"]) == 0
        out = capsys.readouterr().out
        assert "permutation (1-based)" in out

    def test_construct_failure_exit_code(self, capsys):
        assert main(["construct", "32"]) == 1
        assert "error" in capsys.readouterr().err

    def test_enumerate_command(self, capsys):
        assert main(["enumerate", "6", "--classes"]) == 0
        out = capsys.readouterr().out
        assert f"{KNOWN_COSTAS_COUNTS[6]} Costas arrays" in out
        assert "matches enumeration" in out
        assert "equivalence classes" in out

    def test_enumerate_print(self, capsys):
        assert main(["enumerate", "4", "--print"]) == 0
        out = capsys.readouterr().out
        assert out.count("[") >= KNOWN_COSTAS_COUNTS[4]

    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "figure4" in out

    def test_experiment_command_json(self, capsys):
        assert main(["experiment", "table1", "--scale", "smoke", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "table1"
        assert payload["rows"]

    def test_parallel_command(self, capsys):
        assert main(["parallel", "9", "--workers", "1", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "walks" in out


class TestProblemsCommand:
    def test_lists_all_families(self, capsys):
        assert main(["problems"]) == 0
        out = capsys.readouterr().out
        for kind in ("costas", "queens", "all-interval", "magic-square"):
            assert kind in out
        assert "dihedral-8" in out

    def test_json_output(self, capsys):
        assert main(["problems", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        listing = {entry["kind"]: entry for entry in payload["problems"]}
        assert set(listing) == {"costas", "queens", "all-interval", "magic-square"}
        assert listing["queens"]["has_construction"] is True
        assert listing["magic-square"]["symmetry_order"] == 8
        assert listing["magic-square"]["symmetry_group"] == "grid-dihedral-8"
        assert listing["costas"]["symmetry_elements"][0] == "identity"


class TestSolveKind:
    def test_solve_queens(self, capsys):
        assert main(["solve", "8", "--kind", "queens", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "solution (1-based)" in out

    def test_solve_queens_quiet_is_a_valid_solution(self, capsys):
        import numpy as np

        from repro.problems import get_family

        assert main(["solve", "8", "--kind", "queens", "--seed", "1", "--quiet"]) == 0
        values = json.loads(capsys.readouterr().out.strip().replace("'", '"'))
        solution = np.array(values) - 1
        assert get_family("queens").validator(solution)

    def test_solve_kind_construct_first(self, capsys):
        assert main(["solve", "12", "--kind", "all-interval", "--construct-first"]) == 0
        out = capsys.readouterr().out
        assert "constructed algebraically" in out

    def test_solve_unknown_kind_errors(self, capsys):
        assert main(["solve", "8", "--kind", "sudoku"]) == 1
        assert "unknown problem kind" in capsys.readouterr().err

    def test_solve_kind_with_named_solver(self, capsys):
        assert main(
            ["solve", "8", "--kind", "all-interval", "--solver", "tabu", "--seed", "0"]
        ) == 0

    def test_parallel_kind(self, capsys):
        assert main(
            ["parallel", "8", "--kind", "queens", "--workers", "1", "--seed", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "walks" in out and "solution (1-based)" in out


class TestConvenienceApi:
    def test_solve_costas(self):
        result = repro.solve_costas(10, seed=0)
        assert result.solved
        array = result.as_costas_array()
        assert array.order == 10
        assert is_costas(array.to_array())

    def test_solve_costas_model_options(self):
        result = repro.solve_costas(8, seed=0, err_weight="constant", use_chang=False)
        assert result.solved

    def test_as_costas_array_requires_solution(self):
        from repro.core import ASParameters

        result = repro.solve_costas(
            12, seed=0, params=ASParameters.for_costas(12, max_iterations=1)
        )
        if not result.solved:
            with pytest.raises(ValueError):
                result.as_costas_array()

    def test_version_string(self):
        assert repro.__version__


class TestConstructFirst:
    def test_constructible_order_skips_search(self, capsys):
        assert main(["solve", "10", "--construct-first"]) == 0
        out = capsys.readouterr().out
        assert "constructed algebraically" in out
        assert "permutation (1-based)" in out

    def test_construct_first_quiet(self, capsys):
        assert main(["solve", "10", "--construct-first", "--quiet"]) == 0
        out = capsys.readouterr().out.strip()
        values = json.loads(out.replace("'", '"'))
        assert sorted(values) == list(range(1, 11))
        from repro.costas.array import is_costas as _is_costas

        assert _is_costas([v - 1 for v in values])

    def test_falls_back_to_search_when_no_construction(self, capsys):
        # Order 8: 9 is not prime and 10 is not a prime power, and corner
        # deletion from order 9 does not apply either way construct() tries it;
        # if construct succeeds this test still passes through the search-free
        # path, so pick the assertion accordingly.
        from repro.costas.constructions import available_constructions

        assert available_constructions(8) == []
        code = main(["solve", "8", "--seed", "3", "--construct-first"])
        out = capsys.readouterr().out
        assert code == 0
        assert "permutation (1-based)" in out


class TestEnumerateCrossCheck:
    def test_matching_count_exits_zero(self, capsys):
        assert main(["enumerate", "5"]) == 0
        assert "matches enumeration" in capsys.readouterr().out

    def test_mismatch_exits_nonzero(self, capsys, monkeypatch):
        import repro.costas.database as db

        # Poison the published table: enumeration now "differs" and the
        # command must fail loudly (the table is a live validation).
        monkeypatch.setitem(db.KNOWN_COSTAS_COUNTS, 5, 41)
        assert main(["enumerate", "5"]) == 1
        captured = capsys.readouterr()
        assert "DIFFERS FROM" in captured.out
        assert "error" in captured.err


class TestServiceCommands:
    def test_parses_serve_and_request(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--port", "9000", "--db", ":memory:"])
        assert args.command == "serve" and args.port == 9000 and args.db == ":memory:"
        args = parser.parse_args(["request", "18", "--url", "http://h:1", "--priority", "2"])
        assert args.orders == [18] and args.url == "http://h:1" and args.priority == 2
        args = parser.parse_args(["request", "12", "13", "14", "--batch"])
        assert args.orders == [12, 13, 14] and args.batch
        args = parser.parse_args(["serve", "--sync"])
        assert args.frontend_async is False
        assert build_parser().parse_args(["serve"]).frontend_async is True

    def test_request_against_live_server(self, capsys, tmp_path):
        from repro.service.api import ServiceConfig
        from repro.service.http import ServiceHTTPServer

        server = ServiceHTTPServer(
            ("127.0.0.1", 0),
            config=ServiceConfig(store_path=str(tmp_path / "cli.db"), n_workers=1),
        )
        server.start_background()
        try:
            code = main(
                ["request", "12", "--url", f"http://127.0.0.1:{server.port}"]
            )
            out = capsys.readouterr().out
            assert code == 0
            assert "via construction" in out
            assert "permutation (1-based)" in out
            # Second request for a symmetry-equivalent instance: store hit.
            code = main(
                ["request", "12", "--url", f"http://127.0.0.1:{server.port}"]
            )
            out = capsys.readouterr().out
            assert code == 0 and "via store" in out
        finally:
            server.stop(drain=False)

    def test_request_kind_round_trip_for_every_family(self, capsys, tmp_path):
        """Acceptance criterion: `repro request --kind <k>` succeeds for all
        four registered families against a live server."""
        from repro.service.api import ServiceConfig
        from repro.service.http import ServiceHTTPServer

        server = ServiceHTTPServer(
            ("127.0.0.1", 0),
            config=ServiceConfig(
                store_path=str(tmp_path / "kinds.db"),
                n_workers=1,
                default_max_time=60.0,
            ),
        )
        server.start_background()
        try:
            url = f"http://127.0.0.1:{server.port}"
            orders = {
                "costas": 12,
                "queens": 12,
                "all-interval": 10,
                "magic-square": 4,
            }
            for kind, order in orders.items():
                code = main(
                    ["request", str(order), "--kind", kind, "--url", url]
                )
                out = capsys.readouterr().out
                assert code == 0, (kind, out)
                assert kind in out
        finally:
            server.stop(drain=False)

    def test_request_unreachable_server(self, capsys):
        assert main(["request", "12", "--url", "http://127.0.0.1:9", "--timeout", "1"]) == 1
        assert "cannot reach" in capsys.readouterr().err
