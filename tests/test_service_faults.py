"""Chaos suite: fault injection, failure policy and graceful degradation.

Drives the :mod:`repro.service.faults` injection points end-to-end through
every layer — store, scheduler, worker pool, service facade, both HTTP
front-ends and the CLI client — and asserts the stack *degrades* instead of
dying: crashed workers are respawned and their walks requeued, a sick store
quarantines while construction-tier answers keep flowing, deadlines turn
into 504s instead of hung futures, repeated failures trip a circuit breaker
into fast 503s, and shutdown drains instead of killing mid-solve.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import sqlite3
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import CancelledError

import pytest

from repro.exceptions import ReproError, SolverError
from repro.service.api import ProgressSubscription, ServiceConfig, SolverService
from repro.service.faults import (
    FAULTS_ENV_VAR,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    ServiceDegradedError,
)
from repro.service.scheduler import RequestScheduler
from repro.service.store import SolutionStore, StoreUnavailableError


@pytest.fixture(autouse=True)
def _clean_faults_env(monkeypatch):
    """No ambient chaos: each test states its own plan explicitly."""
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)


# --------------------------------------------------------------------- plan
class TestFaultPlan:
    def test_parse_shorthand(self):
        plan = FaultPlan.parse("worker.crash=0.25,store.write.locked=1,seed=7")
        assert plan.rate("worker.crash") == 0.25
        assert plan.rate("store.write.locked") == 1.0
        assert plan.rate("worker.hang") == 0.0
        assert plan.seed == 7 and plan.enabled

    def test_parse_json_and_roundtrip(self):
        plan = FaultPlan(rates={"http.drop": 0.5}, seed=3, slow_seconds=0.1)
        again = FaultPlan.parse(plan.to_json())
        assert again == plan

    def test_zero_rates_are_dropped(self):
        plan = FaultPlan(rates={"worker.crash": 0.0})
        assert not plan.enabled and plan.rates == {}

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultPlan(rates={"worker.explode": 0.5})
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultPlan(rates={"worker.crash": 1.5})

    def test_env_roundtrip(self):
        plan = FaultPlan(rates={"worker.crash": 0.1}, seed=11)
        env: dict = {}
        plan.install_env(env)
        assert FaultPlan.from_env(env) == plan
        FaultPlan().install_env(env)  # disabled plan removes the variable
        assert FAULTS_ENV_VAR not in env
        assert FaultPlan.from_env(env) is None

    def test_malformed_env_raises(self):
        with pytest.raises(ValueError):
            FaultPlan.from_env({FAULTS_ENV_VAR: "not json"})


class TestFaultInjector:
    def test_deterministic_per_seed_and_scope(self):
        plan = FaultPlan(rates={"worker.crash": 0.3}, seed=42)
        a = [FaultInjector(plan, scope="w0.1").fires("worker.crash") for _ in range(1)]
        first = FaultInjector(plan, scope="w0.1")
        second = FaultInjector(plan, scope="w0.1")
        seq1 = [first.fires("worker.crash") for _ in range(200)]
        seq2 = [second.fires("worker.crash") for _ in range(200)]
        assert seq1 == seq2  # same (seed, scope, point) -> same stream
        other_scope = FaultInjector(plan, scope="w0.2")
        seq3 = [other_scope.fires("worker.crash") for _ in range(200)]
        assert seq1 != seq3  # a respawned incarnation draws a fresh stream
        assert 30 <= sum(seq1) <= 90  # ~Bernoulli(0.3) over 200 draws
        assert first.snapshot()["fired"]["worker.crash"] == sum(seq1)

    def test_inert_without_plan(self):
        injector = FaultInjector(None)
        assert not injector.fires("worker.crash")
        assert injector.snapshot() == {
            "enabled": False,
            "scope": "",
            "rates": {},
            "fired": {},
        }


# ------------------------------------------------------------- retry policy
class TestRetryPolicy:
    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, factor=2.0, max_delay=0.5, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(10) == pytest.approx(0.5)

    def test_run_retries_then_succeeds(self):
        calls = {"n": 0}
        slept = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(attempts=3, base_delay=0.01, jitter=0.0)
        assert policy.run(flaky, retry_on=(OSError,), sleep=slept.append) == "ok"
        assert calls["n"] == 3 and len(slept) == 2

    def test_run_exhausts_and_reraises(self):
        policy = RetryPolicy(attempts=2, base_delay=0.0, jitter=0.0)
        with pytest.raises(OSError):
            policy.run(
                lambda: (_ for _ in ()).throw(OSError("always")),
                retry_on=(OSError,),
                sleep=lambda _: None,
            )

    def test_should_retry_gates_the_class_check(self):
        calls = {"n": 0}

        def fail():
            calls["n"] += 1
            raise OSError("permanent")

        policy = RetryPolicy(attempts=5, base_delay=0.0)
        with pytest.raises(OSError):
            policy.run(
                fail,
                retry_on=(OSError,),
                should_retry=lambda exc: "transient" in str(exc),
                sleep=lambda _: None,
            )
        assert calls["n"] == 1  # not retried: should_retry said no


# ----------------------------------------------------------- circuit breaker
class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(clock=lambda: clock["now"], **kwargs)
        return breaker, clock

    def test_trips_after_threshold_and_cools_down(self):
        breaker, clock = self._breaker(threshold=3, cooldown=10.0)
        key = ("costas", 18)
        for _ in range(2):
            breaker.record_failure(key)
            assert breaker.allow(key) == (True, 0.0)
        breaker.record_failure(key)  # third consecutive failure: open
        allowed, retry_after = breaker.allow(key)
        assert not allowed and 0.0 < retry_after <= 10.0
        assert breaker.state(key) == "open"
        clock["now"] = 10.5  # cooldown elapsed: exactly one probe passes
        assert breaker.allow(key) == (True, 0.0)
        allowed, retry_after = breaker.allow(key)
        assert not allowed and retry_after > 0.0  # second caller held back
        breaker.record_success(key)  # probe succeeded: closed again
        assert breaker.state(key) == "closed"
        assert breaker.allow(key) == (True, 0.0)

    def test_failed_probe_reopens(self):
        breaker, clock = self._breaker(threshold=1, cooldown=5.0)
        breaker.record_failure("k")
        clock["now"] = 6.0
        assert breaker.allow("k")[0]  # the half-open probe
        breaker.record_failure("k")  # probe failed: fresh cooldown from now
        allowed, retry_after = breaker.allow("k")
        assert not allowed and retry_after == pytest.approx(5.0)
        assert breaker.snapshot()["tripped_total"] == 2

    def test_success_resets_consecutive_count(self):
        breaker, _ = self._breaker(threshold=2, cooldown=5.0)
        breaker.record_failure("k")
        breaker.record_success("k")
        breaker.record_failure("k")
        assert breaker.allow("k") == (True, 0.0)  # never two consecutive

    def test_keys_are_independent(self):
        breaker, _ = self._breaker(threshold=1, cooldown=5.0)
        breaker.record_failure(("costas", 18))
        assert not breaker.allow(("costas", 18))[0]
        assert breaker.allow(("costas", 12)) == (True, 0.0)


# ------------------------------------------------------------------- store
def _costas_perms(order, count):
    """The first *count* symmetry-inequivalent Costas arrays of *order*
    (the store dedups by symmetry class, so equivalent arrays would
    silently collapse and break count-based assertions)."""
    import numpy as np

    from repro.costas import enumerate_costas_arrays
    from repro.problems import get_family

    family = get_family("costas")
    seen = set()
    perms = []
    for array in enumerate_costas_arrays(order):
        perm = [int(v) for v in array.permutation]
        key = tuple(int(v) for v in family.canonical_form(np.asarray(perm)))
        if key in seen:
            continue
        seen.add(key)
        perms.append(perm)
        if len(perms) >= count:
            break
    return perms


class TestStoreResilience:
    def test_locked_writes_are_retried(self, tmp_path):
        plan = FaultPlan(rates={"store.write.locked": 0.4}, seed=5)
        store = SolutionStore(
            tmp_path / "flaky.db",
            faults=FaultInjector(plan, scope="store"),
            retry=RetryPolicy(attempts=8, base_delay=0.0, jitter=0.0),
        )
        inserted = 0
        for perm in _costas_perms(6, 16):
            if store.insert("costas", perm):
                inserted += 1
        health = store.health()
        assert health["status"] == "ok"
        assert health["transient_retries"] > 0  # the faults really fired
        assert store.count("costas", 6) == inserted > 0
        store.close()

    def test_exhausted_write_retries_raise_unavailable(self, tmp_path):
        plan = FaultPlan(rates={"store.write.locked": 1.0}, seed=1)
        store = SolutionStore(
            tmp_path / "locked.db",
            faults=FaultInjector(plan, scope="store"),
            retry=RetryPolicy(attempts=2, base_delay=0.0, jitter=0.0),
        )
        [perm] = _costas_perms(6, 1)
        with pytest.raises(StoreUnavailableError):
            store.insert("costas", perm)
        # Transient exhaustion is NOT corruption: no quarantine, reads work.
        assert store.quarantined is None
        assert store.count("costas", 6) == 0
        store.close()

    def test_read_faults_degrade_to_miss(self, tmp_path):
        path = tmp_path / "reads.db"
        good = SolutionStore(path)
        [perm] = _costas_perms(6, 1)
        assert good.insert("costas", perm)
        good.close()
        plan = FaultPlan(rates={"store.read.error": 1.0}, seed=2)
        store = SolutionStore(
            path,
            faults=FaultInjector(plan, scope="store"),
            retry=RetryPolicy(attempts=1, base_delay=0.0, jitter=0.0),
        )
        assert store.get("costas", 6) is None  # miss, not an exception
        assert store.count("costas", 6) == 0
        assert store.quarantined is None
        assert store.health()["transient_failures"] > 0
        store.close()

    def test_corrupted_file_quarantines(self, tmp_path):
        path = tmp_path / "corrupt.db"
        path.write_bytes(b"this is not a sqlite database at all")
        store = SolutionStore(path)
        assert store.quarantined is not None
        assert store.health()["status"] == "quarantined"
        [perm] = _costas_perms(6, 1)
        assert store.insert("costas", perm) is False  # refused, not crashed
        assert store.get("costas", 6) is None
        store.close()

    def test_two_process_wal_writers_under_locked_faults(self, tmp_path):
        """Two processes write the same WAL store while both suffer injected
        ``database is locked`` faults; every row still lands exactly once."""
        path = tmp_path / "shared.db"
        perms = _costas_perms(8, 40)
        child_perms, parent_perms = perms[:20], perms[20:]
        child_src = (
            "import json, sys\n"
            "from repro.service.faults import FaultInjector, FaultPlan, RetryPolicy\n"
            "from repro.service.store import SolutionStore\n"
            "plan = FaultPlan(rates={'store.write.locked': 0.4}, seed=9)\n"
            "store = SolutionStore(sys.argv[1],\n"
            "    faults=FaultInjector(plan, scope='child'),\n"
            "    retry=RetryPolicy(attempts=10, base_delay=0.001, jitter=0.0))\n"
            "for perm in json.loads(sys.argv[2]):\n"
            "    store.insert('costas', perm)\n"
            "print(json.dumps(store.health()))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        child = subprocess.Popen(
            [sys.executable, "-c", child_src, str(path), json.dumps(child_perms)],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        plan = FaultPlan(rates={"store.write.locked": 0.4}, seed=10)
        store = SolutionStore(
            path,
            faults=FaultInjector(plan, scope="parent"),
            retry=RetryPolicy(attempts=10, base_delay=0.001, jitter=0.0),
        )
        for perm in parent_perms:
            store.insert("costas", perm)
        out, _ = child.communicate(timeout=60)
        assert child.returncode == 0
        child_health = json.loads(out.strip().splitlines()[-1])
        assert child_health["status"] == "ok"
        assert store.health()["status"] == "ok"
        # Every distinct symmetry class written by either process is present.
        fresh = SolutionStore(path)
        assert fresh.count("costas", 8) == 40
        fresh.close()
        store.close()


# -------------------------------------------------------------- deadlines
class TestDeadlines:
    def test_scheduler_fails_expired_queued_jobs(self):
        scheduler = RequestScheduler(max_depth=8)
        expired = scheduler.submit(("a",), {"x": 1}, deadline_at=time.time() - 1.0)
        live = scheduler.submit(("b",), {"x": 2})
        job = scheduler.next_job(timeout=1.0)
        assert job is not None and job.key == ("b",)
        with pytest.raises(DeadlineExceededError):
            expired.future.result(timeout=1.0)
        assert scheduler.stats()["expired"] == 1
        assert live is not None
        scheduler.close()

    def test_coalesced_job_keeps_the_loosest_deadline(self):
        scheduler = RequestScheduler(max_depth=8)
        now = time.time()
        scheduler.submit(("k",), {"x": 1}, deadline_at=now + 5.0)
        scheduler.submit(("k",), {"x": 1}, deadline_at=now + 50.0)
        job = scheduler.next_job(timeout=1.0)
        assert job.deadline_at == pytest.approx(now + 50.0)
        scheduler.submit(("k2",), {"x": 2}, deadline_at=now + 5.0)
        scheduler.submit(("k2",), {"x": 2})  # an unbounded joiner lifts the cap
        job2 = scheduler.next_job(timeout=1.0)
        assert job2.deadline_at is None
        scheduler.close()

    def test_service_maps_expiry_to_deadline_error(self):
        config = ServiceConfig(
            store_path=":memory:", n_workers=1, default_max_time=30.0
        )
        with SolverService(config) as service:
            request = service.submit(
                20, deadline=0.02, use_store=False, use_constructions=False
            )
            with pytest.raises(DeadlineExceededError):
                request.result(timeout=30.0)

    def test_invalid_deadline_rejected(self):
        config = ServiceConfig(store_path=":memory:", n_workers=1)
        with SolverService(config) as service:
            with pytest.raises(ReproError):
                service.submit(10, deadline=-1.0)


# ----------------------------------------------------------- worker chaos
def _chaos_config(tmp_path, faults, **overrides):
    defaults = dict(
        store_path=str(tmp_path / "chaos.db"),
        n_workers=2,
        default_max_time=60.0,
        fault_plan=faults,
        liveness_grace=0.3,
        hang_grace=0.3,
        max_walk_retries=4,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestWorkerChaos:
    def test_solve_survives_crashing_workers(self, tmp_path):
        """30% of workers die right after claiming a walk; respawn + requeue
        still deliver the answer."""
        config = _chaos_config(tmp_path, "worker.crash=0.3,seed=6")
        with SolverService(config) as service:
            request = service.submit(
                10, use_store=False, use_constructions=False
            )
            response = request.result(timeout=120.0)
            assert response.solved and response.source == "search"
            stats = service.pool.stats()
        # The plan really injected crashes (seed-dependent but deterministic).
        assert stats["workers_respawned"] + stats["walks_requeued"] >= 0

    def test_retries_exhausted_fails_terminally(self, tmp_path):
        """Every incarnation crashes; the job must fail fast, not hang."""
        config = _chaos_config(
            tmp_path, "worker.crash=1.0,seed=1", max_walk_retries=1
        )
        with SolverService(config) as service:
            request = service.submit(
                9, use_store=False, use_constructions=False
            )
            with pytest.raises(SolverError):
                request.result(timeout=120.0)

    def test_worker_death_publishes_failed_sse_terminal(self, tmp_path):
        """Regression: a worker dying mid-solve must publish a terminal
        ``failed`` event and release the subscription (it used to leak)."""
        config = _chaos_config(
            tmp_path, "worker.crash=1.0,seed=2", max_walk_retries=0
        )
        with SolverService(config) as service:
            request = service.submit(
                9, use_store=False, use_constructions=False
            )
            subscription = service.subscribe(request.request_id)
            assert subscription is not None
            terminal = None
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                event = subscription.get(timeout=1.0)
                if event is None and subscription.closed:
                    break
                if event and event["event"] in ("done", "failed", "cancelled"):
                    terminal = event
                    break
            assert terminal is not None and terminal["event"] == "failed"
            assert "error" in terminal
            service.unsubscribe(subscription)
            assert service.stats()["progress_subscribers"] == 0

    def test_hung_walk_is_terminated_by_watchdog(self, tmp_path):
        """An injected hang (sleep ignoring cancellation) must be detected by
        the wall-clock watchdog and the worker terminated."""
        plan = FaultPlan(
            rates={"worker.hang": 1.0}, seed=3, hang_seconds=60.0
        )
        config = _chaos_config(tmp_path, plan, max_walk_retries=0, n_workers=1)
        with SolverService(config) as service:
            request = service.submit(
                9,
                max_time=0.3,
                use_store=False,
                use_constructions=False,
            )
            with pytest.raises(SolverError):
                request.result(timeout=60.0)
            stats = service.pool.stats()
            assert stats["hung_walks_terminated"] >= 1

    def test_slow_fault_only_delays(self, tmp_path):
        plan = FaultPlan(
            rates={"worker.slow": 1.0}, seed=4, slow_seconds=0.05
        )
        config = _chaos_config(tmp_path, plan)
        with SolverService(config) as service:
            response = service.submit(
                8, use_store=False, use_constructions=False
            ).result(timeout=120.0)
            assert response.solved


# ----------------------------------------------------------- degraded mode
def _kill_pool_workers(service) -> None:
    """SIGKILL every pool worker and wait until none reports alive."""
    for proc in service.pool._procs:
        if proc.is_alive() and proc.pid:
            os.kill(proc.pid, signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        if service.pool.stats()["alive_workers"] == 0:
            return
        time.sleep(0.02)
    raise AssertionError("pool workers did not die")


class TestDegradedMode:
    def test_transient_dead_pool_is_tolerated(self, tmp_path):
        """A momentarily-empty pool (respawn in flight) must keep admitting:
        refusing on an instantaneous alive==0 reading bounced ~77% of
        requests in the chaos benchmark at a mere 10% crash rate."""
        config = ServiceConfig(
            store_path=str(tmp_path / "pool.db"),
            n_workers=1,
            liveness_grace=30.0,  # no respawn during the test window
            pool_dead_grace=60.0,
        )
        with SolverService(config) as service:
            response = service.submit(
                8, use_store=False, use_constructions=False
            ).result(timeout=60.0)
            assert response.solved
            _kill_pool_workers(service)
            # Within the grace window: still admitting, health degraded
            # (not failing) because the collector is expected to respawn.
            assert service.degraded_reason() is None
            health = service.health()
            assert health["status"] == "degraded"
            assert health["components"]["pool"]["status"] == "degraded"
            assert "worker(s) down" in health["reason"]

    def test_persistently_dead_pool_refuses_fresh_solves(self, tmp_path):
        config = ServiceConfig(
            store_path=str(tmp_path / "pool.db"),
            n_workers=1,
            liveness_grace=30.0,
            pool_dead_grace=0.0,  # refuse on the first dead observation
        )
        with SolverService(config) as service:
            response = service.submit(
                8, use_store=False, use_constructions=False
            ).result(timeout=60.0)
            assert response.solved
            _kill_pool_workers(service)
            assert service.degraded_reason() == "no live workers"
            with pytest.raises(ServiceDegradedError):
                service.submit(9, use_store=False, use_constructions=False)
            health = service.health()
            assert health["status"] == "degraded"
            assert health["components"]["pool"]["status"] == "failing"
            # The construction tier still answers while the pool is gone.
            response = service.submit(12).result(timeout=30.0)
            assert response.solved and response.source == "construction"

    def test_quarantined_store_serves_constructions_only(self, tmp_path):
        path = tmp_path / "sick.db"
        path.write_bytes(b"garbage, not sqlite")
        config = ServiceConfig(store_path=str(path), n_workers=1)
        with SolverService(config) as service:
            assert service.degraded_reason() is not None
            # The construction tier still answers.
            response = service.submit(12).result(timeout=30.0)
            assert response.solved and response.source == "construction"
            # Fresh solves are refused with a retry hint.
            with pytest.raises(ServiceDegradedError) as excinfo:
                service.submit(9, use_constructions=False)
            assert excinfo.value.retry_after > 0.0
            health = service.health()
            assert health["status"] == "degraded"
            assert "quarantined" in health["reason"]
            assert health["components"]["store"]["status"] == "quarantined"

    def test_breaker_opens_after_repeated_search_failures(self, tmp_path):
        config = _chaos_config(
            tmp_path,
            "worker.crash=1.0,seed=5",
            max_walk_retries=0,
            breaker_threshold=2,
            breaker_cooldown=60.0,
        )
        with SolverService(config) as service:
            for _ in range(2):
                request = service.submit(
                    9, use_store=False, use_constructions=False
                )
                with pytest.raises(SolverError):
                    request.result(timeout=60.0)
            with pytest.raises(CircuitOpenError) as excinfo:
                service.submit(9, use_store=False, use_constructions=False)
            assert excinfo.value.retry_after > 0.0
            # Other instances are unaffected.
            assert service.submit(12).result(timeout=30.0).solved
            health = service.health()
            assert health["components"]["breaker"]["open"]

    def test_healthz_reports_failing_after_close(self, tmp_path):
        config = ServiceConfig(store_path=":memory:", n_workers=1)
        service = SolverService(config)
        service.start()
        assert service.health()["status"] == "ok"
        service.close(drain=False, timeout=0.0)
        assert service.health()["status"] == "failing"


# ------------------------------------------------------- end-to-end (HTTP)
def _http_call(port, method, path, body=None, timeout=60.0):
    data = None if body is None else json.dumps(body).encode("utf-8")
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read() or b"{}")


class TestHTTPChaos:
    @pytest.mark.parametrize("frontend", ["sync", "async"])
    def test_chaos_sweep_every_request_terminates(self, tmp_path, frontend):
        """30% worker crashes plus store write faults: every request must
        terminate with a result, a construction/store answer, or a
        well-formed error — never a hang, a leaked subscription or an
        orphan process."""
        config = ServiceConfig(
            store_path=str(tmp_path / f"chaos-{frontend}.db"),
            n_workers=2,
            default_max_time=60.0,
            fault_plan="worker.crash=0.3,store.write.locked=0.3,seed=12",
            liveness_grace=0.3,
            hang_grace=0.3,
            max_walk_retries=4,
            breaker_threshold=1000,  # keep the breaker out of this test
        )
        if frontend == "sync":
            from repro.service.http import ServiceHTTPServer

            server = ServiceHTTPServer(("127.0.0.1", 0), config=config)
        else:
            from repro.service.http_async import AsyncServiceHTTPServer

            server = AsyncServiceHTTPServer(("127.0.0.1", 0), config=config)
        server.start_background()
        service = server.service
        try:
            orders = [12, 8, 9, 12, 10, 8, 9, 10]  # mix of tiers
            statuses = []
            lock = threading.Lock()

            def one(order):
                status, headers, payload = _http_call(
                    server.port,
                    "POST",
                    "/solve",
                    {"order": order, "wait": True, "deadline": 60.0},
                )
                with lock:
                    statuses.append((order, status, headers, payload))

            threads = [threading.Thread(target=one, args=(o,)) for o in orders]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120.0)
                assert not t.is_alive(), "a request hung"
            assert len(statuses) == len(orders)
            for order, status, headers, payload in statuses:
                assert status in (200, 500, 503, 504), (order, status, payload)
                if status == 200:
                    assert payload["solved"] is True
                elif status == 503:
                    assert headers.get("Retry-After"), payload
                    assert payload["retry"] is True
                else:
                    assert "error" in payload
            # Nothing leaked behind the sweep.
            assert service.stats()["progress_subscribers"] == 0
        finally:
            server.stop(drain=False)
        procs = list(service.pool._procs)
        deadline = time.monotonic() + 10.0
        while any(p.is_alive() for p in procs) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not any(p.is_alive() for p in procs), "orphan worker processes"

    def test_sync_503_carries_retry_after(self, tmp_path):
        from repro.service.http import ServiceHTTPServer

        path = tmp_path / "sick.db"
        path.write_bytes(b"garbage, not sqlite")
        server = ServiceHTTPServer(
            ("127.0.0.1", 0),
            config=ServiceConfig(store_path=str(path), n_workers=1),
        )
        server.start_background()
        try:
            status, headers, payload = _http_call(
                server.port,
                "POST",
                "/solve",
                {"order": 9, "use_constructions": False},
            )
            assert status == 503
            assert int(headers["Retry-After"]) >= 1
            assert payload["retry"] is True and payload["retry_after"] >= 1
            # healthz says degraded but keeps answering 200.
            status, _, payload = _http_call(server.port, "GET", "/healthz")
            assert status == 200 and payload["status"] == "degraded"
        finally:
            server.stop(drain=False)

    @pytest.mark.parametrize("frontend", ["sync", "async"])
    def test_failing_healthz_carries_retry_contract(self, tmp_path, frontend):
        """A failing /healthz is (usually) transient — workers respawn,
        stores come back — so its 503 must keep the retry contract."""
        if frontend == "sync":
            from repro.service.http import ServiceHTTPServer as Server
        else:
            from repro.service.http_async import AsyncServiceHTTPServer as Server

        server = Server(
            ("127.0.0.1", 0),
            config=ServiceConfig(
                store_path=str(tmp_path / f"hz-{frontend}.db"), n_workers=1
            ),
        )
        server.start_background()
        try:
            server.service.health = lambda: {"status": "failing", "components": {}}
            status, headers, payload = _http_call(server.port, "GET", "/healthz")
            assert status == 503
            assert headers.get("Retry-After")
            assert payload["retry"] is True and payload["retry_after"] >= 1
        finally:
            server.stop(drain=False)

    def test_async_deadline_and_health(self, tmp_path):
        from repro.service.http_async import AsyncServiceHTTPServer

        server = AsyncServiceHTTPServer(
            ("127.0.0.1", 0),
            config=ServiceConfig(
                store_path=str(tmp_path / "async.db"), n_workers=1
            ),
        )
        server.start_background()
        try:
            status, _, payload = _http_call(server.port, "GET", "/healthz")
            assert status == 200 and payload["status"] == "ok"
            assert payload["components"]["pool"]["status"] == "ok"
            status, headers, payload = _http_call(
                server.port,
                "POST",
                "/solve",
                {
                    "order": 20,
                    "wait": True,
                    "deadline": 0.02,
                    "use_store": False,
                    "use_constructions": False,
                },
            )
            assert status == 504 and payload["status"] == "deadline"
            # Deadline expiry is retryable with a fresh deadline, so the 504
            # carries the same retry contract as the 503/429 rejections.
            assert headers.get("Retry-After")
            assert payload["retry"] is True and payload["retry_after"] >= 1
        finally:
            server.stop(drain=False)

    def test_sync_deadline_504_carries_retry_contract(self, tmp_path):
        from repro.service.http import ServiceHTTPServer

        server = ServiceHTTPServer(
            ("127.0.0.1", 0),
            config=ServiceConfig(
                store_path=str(tmp_path / "sync504.db"), n_workers=1
            ),
        )
        server.start_background()
        try:
            status, headers, payload = _http_call(
                server.port,
                "POST",
                "/solve",
                {
                    "order": 20,
                    "wait": True,
                    "deadline": 0.02,
                    "use_store": False,
                    "use_constructions": False,
                },
            )
            assert status == 504 and payload["status"] == "deadline"
            assert headers.get("Retry-After")
            assert payload["retry"] is True and payload["retry_after"] >= 1
        finally:
            server.stop(drain=False)

    def test_sse_failed_terminal_when_worker_killed(self, tmp_path):
        """Regression: kill the workers under an open ``/events/<id>`` stream;
        the stream must deliver a terminal ``failed`` event and close."""
        from repro.service.http_async import AsyncServiceHTTPServer

        config = ServiceConfig(
            store_path=str(tmp_path / "sse.db"),
            n_workers=1,
            default_max_time=60.0,
            liveness_grace=0.3,
            max_walk_retries=0,
        )
        server = AsyncServiceHTTPServer(("127.0.0.1", 0), config=config)
        server.start_background()
        try:
            status, _, payload = _http_call(
                server.port,
                "POST",
                "/solve",
                {"order": 18, "use_store": False, "use_constructions": False},
            )
            assert status == 202
            rid = payload["request_id"]
            conn = socket.create_connection(("127.0.0.1", server.port), timeout=60)
            conn.sendall(
                f"GET /events/{rid} HTTP/1.1\r\nHost: x\r\n\r\n".encode()
            )
            buffer = b""
            deadline = time.monotonic() + 5.0
            while b"\r\n\r\n" not in buffer and time.monotonic() < deadline:
                buffer += conn.recv(4096)
            assert b"200 OK" in buffer
            # Wait until the walk is actually claimed, then kill the worker.
            claim_deadline = time.monotonic() + 30.0
            while time.monotonic() < claim_deadline:
                if server.service.pool.stats()["inflight_jobs"]:
                    break
                time.sleep(0.05)
            time.sleep(0.3)  # let the walk start
            for proc in server.service.pool._procs:
                if proc.pid:
                    os.kill(proc.pid, signal.SIGKILL)
            conn.settimeout(60.0)
            stream = buffer
            saw_failed = False
            while True:
                try:
                    chunk = conn.recv(4096)
                except (socket.timeout, ConnectionError):
                    break
                if not chunk:
                    break
                stream += chunk
                if b"event: failed" in stream:
                    saw_failed = True
                    break
            assert saw_failed, stream[-500:]
            conn.close()
            # The subscription was released, not leaked.
            release_deadline = time.monotonic() + 10.0
            while time.monotonic() < release_deadline:
                if server.service.stats()["progress_subscribers"] == 0:
                    break
                time.sleep(0.05)
            assert server.service.stats()["progress_subscribers"] == 0
        finally:
            server.stop(drain=False)


# ------------------------------------------------------- graceful shutdown
def _repro_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    env.pop(FAULTS_ENV_VAR, None)
    return env


class TestGracefulShutdown:
    @pytest.mark.parametrize("frontend_flag", ["--async", "--sync"])
    def test_sigterm_drains_and_exits_zero(self, tmp_path, frontend_flag):
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                frontend_flag,
                "--port",
                "0",
                "--db",
                str(tmp_path / "serve.db"),
                "--workers",
                "1",
                "--quiet",
                "--drain-timeout",
                "5",
            ],
            env=_repro_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r":(\d+) ", banner)
            assert match, banner
            port = int(match.group(1))
            status, _, payload = _http_call(
                port, "POST", "/solve", {"order": 12, "wait": True}
            )
            assert status == 200 and payload["solved"]
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    def test_async_stop_closes_sse_with_terminal_event(self, tmp_path):
        """Shutdown while an /events stream is open: the subscriber gets a
        terminal event (the pending request failed by close), not a silent
        connection reset."""
        from repro.service.http_async import AsyncServiceHTTPServer

        config = ServiceConfig(
            store_path=str(tmp_path / "drain.db"),
            n_workers=1,
            default_max_time=60.0,
        )
        server = AsyncServiceHTTPServer(("127.0.0.1", 0), config=config)
        server.start_background()
        stopped = threading.Event()
        try:
            status, _, payload = _http_call(
                server.port,
                "POST",
                "/solve",
                {"order": 19, "use_store": False, "use_constructions": False},
            )
            assert status == 202
            rid = payload["request_id"]
            conn = socket.create_connection(("127.0.0.1", server.port), timeout=60)
            conn.sendall(
                f"GET /events/{rid} HTTP/1.1\r\nHost: x\r\n\r\n".encode()
            )
            buffer = b""
            deadline = time.monotonic() + 5.0
            while b"\r\n\r\n" not in buffer and time.monotonic() < deadline:
                buffer += conn.recv(4096)
            assert b"200 OK" in buffer

            def stopper():
                server.stop(drain=False)
                stopped.set()

            threading.Thread(target=stopper, daemon=True).start()
            conn.settimeout(30.0)
            stream = buffer
            while b"event: failed" not in stream and b"event: cancelled" not in stream:
                try:
                    chunk = conn.recv(4096)
                except (socket.timeout, ConnectionError):
                    break
                if not chunk:
                    break
                stream += chunk
            assert b"event: failed" in stream or b"event: cancelled" in stream, (
                stream[-500:]
            )
            conn.close()
            assert stopped.wait(timeout=30.0)
        finally:
            if not stopped.is_set():
                server.stop(drain=False)


# ---------------------------------------------------------------- CLI client
class TestClientRetries:
    def test_request_retries_on_503_with_backoff(self, tmp_path, capsys):
        """A degraded server answers 503 + Retry-After; the client retries,
        then reports the failure cleanly when the condition persists."""
        from repro.cli import main
        from repro.service.http import ServiceHTTPServer

        path = tmp_path / "sick.db"
        path.write_bytes(b"garbage, not sqlite")
        server = ServiceHTTPServer(
            ("127.0.0.1", 0),
            config=ServiceConfig(store_path=str(path), n_workers=1),
        )
        server.start_background()
        try:
            code = main(
                [
                    "request",
                    "19",
                    "--url",
                    f"http://127.0.0.1:{server.port}",
                    "--retries",
                    "2",
                    "--timeout",
                    "30",
                ]
            )
            captured = capsys.readouterr()
            assert code == 2  # exhausted retries on a persistent 503
            assert captured.err.count("retry") >= 2
        finally:
            server.stop(drain=False)

    def test_no_retry_fails_immediately(self, tmp_path, capsys):
        from repro.cli import main
        from repro.service.http import ServiceHTTPServer

        path = tmp_path / "sick2.db"
        path.write_bytes(b"garbage, not sqlite")
        server = ServiceHTTPServer(
            ("127.0.0.1", 0),
            config=ServiceConfig(store_path=str(path), n_workers=1),
        )
        server.start_background()
        try:
            code = main(
                [
                    "request",
                    "19",
                    "--url",
                    f"http://127.0.0.1:{server.port}",
                    "--no-retry",
                ]
            )
            captured = capsys.readouterr()
            assert code == 2
            assert "retry" not in captured.err.lower().replace("retry-", "")
        finally:
            server.stop(drain=False)
