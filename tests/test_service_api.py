"""Tests for the worker pool and the SolverService facade.

The coalescing test here is the acceptance criterion of the service PR: N
concurrent identical requests must trigger exactly **one** solve on the pool.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro.costas.array import is_costas
from repro.exceptions import SolverError
from repro.service.api import ServiceConfig, SolverService
from repro.service.scheduler import SchedulerSaturatedError
from repro.service.workers import WorkerPool


@pytest.fixture()
def service(tmp_path):
    config = ServiceConfig(
        store_path=str(tmp_path / "solutions.db"),
        n_workers=2,
        default_max_time=120.0,
    )
    with SolverService(config) as svc:
        yield svc


class TestWorkerPool:
    def test_jobs_run_on_warm_workers(self):
        done = threading.Event()
        outcome = {}

        def on_done(handle):
            outcome["handle"] = handle
            done.set()

        with WorkerPool(2, seed_root=1) as pool:
            pool.submit(
                {"kind": "costas", "order": 9, "params": None, "max_time": 60.0},
                on_done=on_done,
            )
            assert done.wait(timeout=60)
            handle = outcome["handle"]
            assert handle.solved
            assert is_costas(handle.best.configuration)
            # Same two processes stay up across jobs.
            stats = pool.stats()
            assert stats["alive_workers"] == 2
            assert stats["jobs_done"] == 1

    def test_sequential_jobs_reuse_processes(self):
        events = [threading.Event() for _ in range(3)]
        with WorkerPool(1, seed_root=2) as pool:
            first_pids = {p.pid for p in pool._procs}
            for event in events:
                pool.submit(
                    {"kind": "costas", "order": 8, "params": None, "max_time": 60.0},
                    on_done=lambda h, e=event: e.set(),
                )
            for event in events:
                assert event.wait(timeout=60)
            assert {p.pid for p in pool._procs} == first_pids
            assert pool.stats()["jobs_done"] == 3
            assert pool.stats()["workers_respawned"] == 0

    def test_multi_walk_job_first_past_the_post(self):
        done = threading.Event()
        outcome = {}

        def on_done(handle):
            outcome["handle"] = handle
            done.set()

        with WorkerPool(2, seed_root=3) as pool:
            pool.submit(
                {"kind": "costas", "order": 10, "params": None, "max_time": 60.0},
                walks=2,
                on_done=on_done,
            )
            assert done.wait(timeout=120)
            assert outcome["handle"].solved

    def test_shutdown_drain_false_aborts_quickly(self):
        done = threading.Event()
        pool = WorkerPool(1, seed_root=4)
        pool.start()
        # Order 20 will not solve instantly; abort must not wait for it.
        pool.submit(
            {"kind": "costas", "order": 20, "params": None, "max_time": 300.0},
            on_done=lambda h: done.set(),
        )
        time.sleep(0.5)
        start = time.perf_counter()
        pool.shutdown(drain=False, timeout=20.0)
        assert time.perf_counter() - start < 20.0
        assert done.wait(timeout=5)
        assert all(not p.is_alive() for p in pool._procs)

    def test_dead_worker_detected_despite_sibling_traffic(self):
        """A worker killed mid-job is respawned even while its sibling keeps
        a steady result stream flowing (regression: a shared grace clock or
        liveness-only-when-idle would starve detection forever)."""
        import multiprocessing as mp
        import os
        import signal as signal_module

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("requires the fork start method")
        hard_done = threading.Event()
        pool = WorkerPool(2, mp_context="fork", seed_root=5)
        pool.start()
        try:
            # Park one worker on a hard instance...
            hard = pool.submit(
                {"kind": "costas", "order": 22, "params": None, "max_time": 300.0},
                on_done=lambda h: hard_done.set(),
            )
            deadline = time.perf_counter() + 30
            while not hard.running and time.perf_counter() < deadline:
                time.sleep(0.05)
            assert hard.running, "hard job never claimed"
            victim_slot = next(iter(hard.running.values()))
            victim_pid = pool._procs[victim_slot].pid
            os.kill(victim_pid, signal_module.SIGKILL)
            # ...and keep the sibling busy with a stream of easy jobs while
            # the collector must notice the corpse.
            deadline = time.perf_counter() + 60
            while (
                pool.stats()["workers_respawned"] == 0
                and time.perf_counter() < deadline
            ):
                done = threading.Event()
                pool.submit(
                    {"kind": "costas", "order": 7, "params": None, "max_time": 30.0},
                    on_done=lambda h, e=done: e.set(),
                )
                done.wait(timeout=30)
            assert pool.stats()["workers_respawned"] >= 1
            pool.cancel(hard)  # clean up the (requeued) hard walk
            hard_done.wait(timeout=30)
        finally:
            pool.shutdown(drain=False, timeout=20.0)

    def test_rejects_bad_configuration(self):
        from repro.exceptions import ParallelExecutionError

        with pytest.raises(ParallelExecutionError):
            WorkerPool(0)
        pool = WorkerPool(1)
        with pytest.raises(ParallelExecutionError):
            pool.submit({"kind": "costas", "order": 9}, walks=0, on_done=lambda h: None)
        pool.shutdown(drain=False, timeout=5.0)


class TestServiceTiers:
    def test_construction_tier_answers_constructible_orders(self, service):
        response = service.submit(12).result(timeout=30)
        assert response.solved and response.source == "construction"
        assert is_costas(response.solution)
        # Inserted into the store: the next request is a store hit.
        assert service.submit(12).result(timeout=30).source == "store"

    def test_search_tier_used_when_tiers_disabled(self, service):
        response = service.submit(
            9, use_constructions=False, use_store=False
        ).result(timeout=120)
        assert response.solved and response.source == "search"
        assert is_costas(response.solution)

    def test_search_result_populates_store_for_next_request(self, service):
        first = service.submit(9, use_constructions=False).result(timeout=120)
        assert first.source == "search"
        second = service.submit(9, use_constructions=False).result(timeout=30)
        assert second.source == "store"
        assert is_costas(second.solution)

    def test_rejects_unknown_kind_and_tiny_orders(self, service):
        with pytest.raises(SolverError):
            service.submit(9, kind="sudoku")
        with pytest.raises(SolverError):
            service.submit(2)
        # Per-family minimum orders: queens has none below 4.
        with pytest.raises(SolverError):
            service.submit(3, kind="queens")

    def test_rejects_solver_kind_mismatch(self, service):
        # The CP baseline only accepts Costas instances; the mismatch must
        # fail at submit time (HTTP 400), not inside a worker.
        with pytest.raises(SolverError, match="does not accept"):
            service.submit(8, kind="queens", solver="cp")

    def test_result_by_request_id(self, service):
        request = service.submit(10)
        response = service.result(request.request_id, timeout=30)
        assert response is not None and response.request_id == request.request_id
        assert service.result("nope") is None

    def test_stats_shape(self, service):
        service.submit(10).result(timeout=30)
        stats = service.stats()
        assert {"store", "scheduler", "pool", "immediate", "config"} <= set(stats)
        assert stats["immediate"]["construction"] >= 1


class TestCoalescingAcceptance:
    def test_concurrent_identical_requests_trigger_exactly_one_solve(self, service):
        """Acceptance criterion: N concurrent identical requests -> 1 solve."""
        n_requests = 10
        requests = [
            service.submit(16, use_constructions=False, use_store=False)
            for _ in range(n_requests)
        ]
        responses = [r.result(timeout=300) for r in requests]
        assert all(r.solved for r in responses)
        assert all(is_costas(r.solution) for r in responses)
        solutions = {tuple(int(v) for v in r.solution) for r in responses}
        assert len(solutions) == 1  # one shared in-flight solve, one answer
        sched = service.scheduler.stats()
        assert sched["submitted"] == n_requests
        assert sched["coalesced"] == n_requests - 1
        assert sched["completed"] == 1
        pool = service.pool.stats()
        assert pool["jobs_done"] == 1  # exactly one solve hit the pool
        assert all(
            r.detail.get("coalesced_width") == n_requests for r in responses
        )

    def test_concurrent_submitters_from_threads(self, service):
        results = []
        lock = threading.Lock()

        def client():
            resp = service.submit(
                14, use_constructions=False, use_store=False
            ).result(timeout=300)
            with lock:
                results.append(resp)

        threads = [threading.Thread(target=client) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert len(results) == 6 and all(r.solved for r in results)
        # Coalescing still bounds pool work: fewer jobs than clients.
        assert service.pool.stats()["jobs_done"] < 6


class TestCancellationAndBackpressure:
    def test_cancel_queued_request(self, tmp_path):
        config = ServiceConfig(
            store_path=str(tmp_path / "c.db"), n_workers=1, default_max_time=300.0
        )
        with SolverService(config) as svc:
            # Occupy the single worker with a hard order, then queue another.
            svc.submit(21, use_constructions=False, use_store=False)
            victim = svc.submit(22, use_constructions=False, use_store=False)
            assert svc.cancel(victim.request_id)
            with pytest.raises(CancelledError):
                victim.result(timeout=5)
            assert not svc.cancel(victim.request_id)  # already settled
            svc.close(drain=False, timeout=10.0)

    def test_backpressure_raises_when_queue_full(self, tmp_path):
        config = ServiceConfig(
            store_path=str(tmp_path / "bp.db"),
            n_workers=1,
            max_queue_depth=1,
            default_max_time=300.0,
        )
        with SolverService(config) as svc:
            svc.submit(23, use_constructions=False, use_store=False)
            time.sleep(0.3)  # let the dispatcher drain the first into RUNNING
            svc.submit(24, use_constructions=False, use_store=False)
            with pytest.raises(SchedulerSaturatedError):
                svc.submit(25, use_constructions=False, use_store=False)
            svc.close(drain=False, timeout=10.0)

    def test_close_fails_pending_requests(self, tmp_path):
        config = ServiceConfig(
            store_path=str(tmp_path / "cl.db"), n_workers=1, default_max_time=300.0
        )
        svc = SolverService(config)
        svc.start()
        request = svc.submit(26, use_constructions=False, use_store=False)
        svc.close(drain=False, timeout=10.0)
        with pytest.raises((SolverError, CancelledError)):
            request.result(timeout=5)


class TestBatchSubmit:
    def test_batch_mixes_tiers_and_errors_per_item(self, service):
        outcomes = service.submit_batch(
            [
                {"order": 12},                      # construction tier
                {"order": 12},                      # store hit (previous item)
                {"order": 5, "kind": "sudoku"},    # unknown kind
                {"order": 9, "use_constructions": False, "use_store": False},
            ]
        )
        assert len(outcomes) == 4
        assert outcomes[0].result(timeout=10).source == "construction"
        # The identical second item shares the first one's construction via
        # the batch's immediate-tier cache (no second store/construct call).
        assert outcomes[1].result(timeout=10).source == "construction"
        assert isinstance(outcomes[2], SolverError)
        assert outcomes[3].result(timeout=120).source == "search"

    def test_identical_batch_items_share_one_store_read(self, service):
        service.submit(12).result(timeout=10)  # warm the store
        reads_before = service.store.stats.hits
        outcomes = service.submit_batch([{"order": 12}] * 8)
        assert all(o.result(timeout=10).source == "store" for o in outcomes)
        assert service.store.stats.hits == reads_before + 1

    def test_batch_missing_order_is_a_per_item_error(self, service):
        outcomes = service.submit_batch([{"kind": "queens"}, {"order": 16, "kind": "queens"}])
        assert isinstance(outcomes[0], SolverError)
        assert outcomes[1].result(timeout=10).solved

    def test_batch_counts_in_stats(self, service):
        service.submit_batch([{"order": 12}])
        assert service.stats()["batches"] == 1


class TestProgressSubscriptions:
    def test_subscribe_to_settled_request_gets_snapshot_and_done(self, service):
        request = service.submit(12)
        request.result(timeout=10)
        sub = service.subscribe(request.request_id)
        assert sub is not None
        first = sub.get(timeout=1)
        assert first["event"] == "status" and first["status"] == "done"
        terminal = sub.get(timeout=1)
        assert terminal["event"] == "done" and terminal["solved"]
        assert sub.get(timeout=0.1) is None

    def test_unknown_request_id_returns_none(self, service):
        assert service.subscribe("ghost") is None

    def test_search_request_streams_progress_and_cleans_up(self, tmp_path):
        # A tight progress interval makes the first sample arrive within a
        # few hundred iterations, long before any n=16 walk can finish.
        config = ServiceConfig(
            store_path=str(tmp_path / "progress.db"),
            n_workers=2,
            default_max_time=120.0,
            progress_interval=0.02,
        )
        with SolverService(config) as service:
            self._stream_and_check(service)

    def _stream_and_check(self, service):
        request = service.submit(16, use_constructions=False, use_store=False)
        sub = service.subscribe(request.request_id)
        assert sub is not None
        assert service.stats()["progress_subscribers"] == 1
        events = []
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            event = sub.get(timeout=1.0)
            if event is None:
                if events and events[-1]["event"] == "done":
                    break
                continue
            events.append(event)
            if event["event"] == "done":
                break
        names = [e["event"] for e in events]
        assert names[0] == "status" and names[-1] == "done"
        assert "progress" in names
        # Terminal event tears the registration down service-side.
        assert service.stats()["progress_subscribers"] == 0

    def test_unsubscribe_releases_registration(self, service):
        request = service.submit(15, use_constructions=False, use_store=False)
        sub = service.subscribe(request.request_id)
        assert service.stats()["progress_subscribers"] == 1
        service.unsubscribe(sub)
        assert service.stats()["progress_subscribers"] == 0
        assert sub.closed
        service.cancel(request.request_id)

    def test_cancelled_request_publishes_terminal_cancelled(self, service):
        # Two submissions keep the pool busy so the third stays queued and
        # cancellable; it must stream a "cancelled" terminal event.
        service.submit(20, use_constructions=False, use_store=False)
        service.submit(21, use_constructions=False, use_store=False)
        request = service.submit(22, use_constructions=False, use_store=False)
        sub = service.subscribe(request.request_id)
        assert sub.get(timeout=1)["event"] == "status"
        assert service.cancel(request.request_id)
        deadline = time.monotonic() + 10
        terminal = None
        while time.monotonic() < deadline:
            event = sub.get(timeout=0.5)
            if event is not None and event["event"] in ("cancelled", "done", "failed"):
                terminal = event
                break
        assert terminal is not None and terminal["event"] == "cancelled"


class TestStartConcurrency:
    """Regression tests for the lock-blocking fix in ``start()``: worker
    spawning takes whole seconds, so it must run outside the service lock
    (rule ``lock-blocking``, see DESIGN.md enforced invariants)."""

    def test_stats_not_blocked_while_pool_starts(self, tmp_path):
        config = ServiceConfig(store_path=":memory:", n_workers=1)
        service = SolverService(config)
        pool_starting = threading.Event()
        release_pool = threading.Event()
        original_start = service.pool.start

        def slow_start():
            pool_starting.set()
            assert release_pool.wait(timeout=10.0)
            original_start()

        service.pool.start = slow_start
        starter = threading.Thread(target=service.start)
        starter.start()
        try:
            assert pool_starting.wait(timeout=5.0)
            # The pool is mid-start; the service lock must be free for
            # monitoring calls.
            stats_done = threading.Event()

            def poll():
                service.stats()
                stats_done.set()

            threading.Thread(target=poll, daemon=True).start()
            assert stats_done.wait(timeout=2.0), (
                "stats() blocked behind pool start"
            )
        finally:
            release_pool.set()
            starter.join(timeout=10.0)
            service.close(drain=False, timeout=5.0)

    def test_concurrent_start_spawns_pool_once(self, tmp_path):
        config = ServiceConfig(store_path=":memory:", n_workers=1)
        service = SolverService(config)
        calls = []
        calls_lock = threading.Lock()
        original_start = service.pool.start

        def counting_start():
            with calls_lock:
                calls.append(1)
            time.sleep(0.1)  # widen the race window
            original_start()

        service.pool.start = counting_start
        threads = [threading.Thread(target=service.start) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=15.0)
            assert not t.is_alive()
        try:
            assert len(calls) == 1
            assert service.stats()["pool"]["n_workers"] == 1
        finally:
            service.close(drain=False, timeout=5.0)

    def test_pool_start_spawns_outside_pool_lock(self):
        """Regression for the lock-blocking fix in ``WorkerPool.start()``:
        process spawning must not run under ``_lock`` (submit/stats need it)."""
        pool = WorkerPool(1, seed_root=11)
        lock_was_free = []
        original_spawn = pool._spawn

        def observing_spawn(worker_id):
            free = pool._lock.acquire(timeout=1.0)
            if free:
                pool._lock.release()
            lock_was_free.append(free)
            return original_spawn(worker_id)

        pool._spawn = observing_spawn
        try:
            pool.start()
            assert lock_was_free == [True], "spawn ran while _lock was held"
        finally:
            pool.shutdown(drain=False, timeout=5.0)
