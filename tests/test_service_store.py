"""Tests for the SQLite-backed persistent solution store."""

from __future__ import annotations

import json
import multiprocessing as mp
import sqlite3

import numpy as np
import pytest

from repro.costas.array import is_costas
from repro.costas.constructions import construct
from repro.costas.symmetry import SYMMETRY_NAMES, all_symmetries, canonical_form
from repro.service.store import SolutionStore, StoreError


@pytest.fixture()
def store(tmp_path):
    with SolutionStore(tmp_path / "solutions.db") as s:
        yield s


def _solution(order: int) -> np.ndarray:
    return construct(order).to_array()


class TestInsertAndGet:
    def test_round_trip(self, store):
        perm = _solution(10)
        assert store.insert("costas", perm)
        got = store.get("costas", 10)
        assert got is not None
        assert is_costas(got)
        assert store.stats.inserts == 1
        assert store.stats.hits == 1

    def test_miss_counts(self, store):
        assert store.get("costas", 17) is None
        assert store.stats.misses == 1

    def test_symmetry_class_deduplication(self, store):
        """All 8 dihedral variants collapse onto one stored row."""
        perm = _solution(11)
        assert store.insert("costas", perm)
        for variant in all_symmetries(perm):
            assert not store.insert("costas", variant)
        assert store.count("costas", 11) == 1
        assert store.stats.inserts == 1
        assert store.stats.duplicates == 8  # identity is re-inserted too

    def test_variant_expansion_on_read(self, store):
        perm = _solution(12)
        store.insert("costas", perm)
        base = store.get("costas", 12)
        images = [store.get("costas", 12, variant=k) for k in range(len(SYMMETRY_NAMES))]
        expected = all_symmetries(base)
        for got, want in zip(images, expected):
            assert np.array_equal(got, want)
            assert is_costas(got)

    def test_contains_class_matches_any_variant(self, store):
        perm = _solution(13)
        store.insert("costas", perm)
        for variant in all_symmetries(perm):
            assert store.contains_class("costas", variant)
        assert not store.contains_class("costas", _solution(14))

    def test_rejects_invalid_costas_solution(self, store):
        with pytest.raises(StoreError):
            store.insert("costas", np.arange(8))  # identity is never Costas for n=8

    def test_validation_can_be_disabled(self, tmp_path):
        with SolutionStore(tmp_path / "raw.db", validate=False) as s:
            assert s.insert("costas", np.arange(8))

    def test_distinct_classes_both_stored(self, store):
        a = construct(6, method="welch").to_array()
        b = construct(6, method="golomb").to_array()
        if np.array_equal(canonical_form(a), canonical_form(b)):
            pytest.skip("constructions landed in the same symmetry class")
        assert store.insert("costas", a)
        assert store.insert("costas", b)
        assert store.count("costas", 6) == 2

    def test_orders_and_count_filters(self, store):
        store.insert("costas", _solution(10))
        store.insert("costas", _solution(11))
        assert store.orders("costas") == [10, 11]
        assert store.count() == 2
        assert store.count("costas") == 2
        assert store.count("costas", 10) == 1

    def test_memory_store_works(self):
        with SolutionStore(":memory:") as s:
            s.insert("costas", _solution(10))
            assert s.get("costas", 10) is not None

    def test_snapshot_merges_persistent_and_instance_counters(self, store):
        store.insert("costas", _solution(10))
        store.get("costas", 10)
        snap = store.snapshot()
        assert snap["stored_classes"] == 1
        assert snap["persistent_hits"] == 1
        assert snap["hits"] == 1 and snap["inserts"] == 1


#: One genuine solution per family (constructed where possible), plus the
#: order it answers.
def _family_solution(kind: str):
    from repro.problems import get_family

    family = get_family(kind)
    if kind == "magic-square":
        # The classic 3x3 magic square, 0-based row-major.
        return family, np.array([1, 6, 5, 8, 4, 0, 3, 2, 7])
    orders = {"costas": 11, "queens": 10, "all-interval": 9}
    return family, family.try_construct(orders[kind])


class TestMultiFamilyRoundTrips:
    """Every registered family round-trips through the store with its own
    symmetry group doing the dedup and the variant expansion."""

    @pytest.mark.parametrize(
        "kind", ["costas", "queens", "all-interval", "magic-square"]
    )
    def test_insert_get_contains_class(self, store, kind):
        family, sol = _family_solution(kind)
        assert store.insert(kind, sol)
        got = store.get(kind, sol.size)
        assert got is not None and family.validator(got)
        assert store.contains_class(kind, sol)
        assert store.count(kind, sol.size) == 1
        assert store.orders(kind) == [sol.size]

    @pytest.mark.parametrize(
        "kind", ["costas", "queens", "all-interval", "magic-square"]
    )
    def test_whole_orbit_dedupes_to_one_row(self, kind):
        """Inserting every group image of one solution stores one canonical
        class; the duplicate counter sees the rest."""
        family, sol = _family_solution(kind)
        with SolutionStore(":memory:") as s:
            for image in family.symmetry.images(sol):
                s.insert(kind, image)
            assert s.count(kind, sol.size) == 1
            assert s.stats.inserts == 1
            assert s.stats.duplicates == family.symmetry.order - 1
            for image in family.symmetry.images(sol):
                assert s.contains_class(kind, image)

    @pytest.mark.parametrize(
        "kind", ["costas", "queens", "all-interval", "magic-square"]
    )
    def test_variant_expansion_uses_only_the_familys_group(self, kind):
        """``variant=`` walks exactly the family's own elements (modulo its
        group order) and every image is a valid solution of that family."""
        family, sol = _family_solution(kind)
        with SolutionStore(":memory:") as s:
            s.insert(kind, sol)
            base = s.get(kind, sol.size)
            expected = family.symmetry.images(base)
            for k in range(2 * family.symmetry.order):
                got = s.get(kind, sol.size, variant=k)
                assert np.array_equal(got, expected[k % family.symmetry.order])
                assert family.validator(got)

    def test_all_interval_expansion_never_applies_dihedral_transposes(self):
        """A stored all-interval series must not be 'expanded' through the
        Costas transpose: its group has 4 elements, and walking variants
        0..7 only ever yields those 4 images."""
        family, sol = _family_solution("all-interval")
        with SolutionStore(":memory:") as s:
            s.insert("all-interval", sol)
            images = {
                tuple(int(v) for v in s.get("all-interval", sol.size, variant=k))
                for k in range(8)
            }
            assert len(images) <= 4
            for image in images:
                assert family.validator(np.array(image))

    def test_validators_are_per_family(self):
        """The queens validator guards queens inserts: a permutation that is
        a fine Costas array but attacks on a diagonal is refused."""
        with SolutionStore(":memory:") as s:
            with pytest.raises(StoreError):
                s.insert("queens", np.arange(8))  # every queen on one diagonal
            with pytest.raises(StoreError):
                s.insert("magic-square", np.arange(9))

    def test_kinds_are_isolated_and_aliases_normalise(self):
        """The same permutation stored under two kinds is two rows; alias
        spellings of a kind land on the canonical name."""
        _, queens_sol = _family_solution("queens")
        with SolutionStore(":memory:") as s:
            assert s.insert("queens", queens_sol)
            assert not s.insert("n-queens", queens_sol)  # alias, same class
            assert s.get("costas", queens_sol.size) is None
            assert s.count("queens") == 1
            snap = s.snapshot()
            assert snap["by_kind"]["queens"]["stored_classes"] == 1

    def test_unknown_kind_raises_store_error(self):
        with SolutionStore(":memory:") as s:
            with pytest.raises(StoreError, match="unknown problem kind"):
                s.insert("sudoku", np.arange(9))
            with pytest.raises(StoreError, match="unknown problem kind"):
                s.get("sudoku", 9)


def _hammer(path: str, order: int, variants_json: str, results_queue) -> None:
    """Child-process body: insert every variant, read back, report counters."""
    variants = [np.asarray(v, dtype=np.int64) for v in json.loads(variants_json)]
    store = SolutionStore(path)
    inserted = 0
    for _ in range(5):
        for variant in variants:
            if store.insert("costas", variant):
                inserted += 1
    read_ok = all(store.get("costas", variants[0].size) is not None for _ in range(20))
    store.close()
    results_queue.put((inserted, read_ok))


class TestConcurrentAccess:
    """Two processes hitting the same canonical class must not corrupt or
    double-count (exercises the WAL path)."""

    def test_two_processes_insert_same_class(self, tmp_path):
        path = str(tmp_path / "wal.db")
        # Creating the store up-front also proves schema creation is
        # race-free for the children.
        SolutionStore(path).close()
        perm = _solution(12)
        variants_json = json.dumps([[int(x) for x in v] for v in all_symmetries(perm)])
        ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
        queue = ctx.Queue()
        procs = [
            ctx.Process(target=_hammer, args=(path, 12, variants_json, queue))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        outcomes = [queue.get(timeout=60) for _ in procs]
        for p in procs:
            p.join(timeout=30)
            assert p.exitcode == 0
        # Exactly one insert won across both processes and all 8 variants x 5
        # rounds; every read succeeded.
        assert sum(ins for ins, _ in outcomes) == 1
        assert all(ok for _, ok in outcomes)
        with SolutionStore(path) as store:
            assert store.count("costas", 12) == 1
            got = store.get("costas", 12)
            assert is_costas(got)
        # WAL journal mode actually took effect on the file.
        conn = sqlite3.connect(path)
        (mode,) = conn.execute("PRAGMA journal_mode").fetchone()
        conn.close()
        assert mode.lower() == "wal"
