"""Tests for engine callbacks and RNG helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.callbacks import CallbackList, CostTraceRecorder, EventCounter
from repro.core.rng import derive_seed, ensure_generator, spawn_generators


class TestCostTraceRecorder:
    def test_records_every_iteration(self):
        trace = CostTraceRecorder()
        for it in range(1, 6):
            trace.on_iteration(it, 10 - it)
        assert trace.iterations == [1, 2, 3, 4, 5]
        assert trace.costs == [9, 8, 7, 6, 5]
        assert len(trace) == 5

    def test_subsampling(self):
        trace = CostTraceRecorder(every=2)
        for it in range(1, 7):
            trace.on_iteration(it, it)
        assert trace.iterations == [2, 4, 6]

    def test_rejects_bad_every(self):
        with pytest.raises(ValueError):
            CostTraceRecorder(every=0)

    def test_ignores_events(self):
        trace = CostTraceRecorder()
        trace.on_event("reset", 1, 5)
        assert len(trace) == 0


class TestEventCounter:
    def test_counts_by_name(self):
        counter = EventCounter()
        counter.on_event("reset", 1, 5)
        counter.on_event("reset", 2, 6)
        counter.on_event("solution", 3, 0)
        assert counter["reset"] == 2
        assert counter["solution"] == 1
        assert counter["restart"] == 0
        counter.on_iteration(4, 1)  # no effect

    def test_unknown_event_names_are_tracked(self):
        counter = EventCounter()
        counter.on_event("bespoke", 1, 1)
        assert counter["bespoke"] == 1


class TestCallbackList:
    def test_broadcasts_to_all(self):
        a, b = EventCounter(), EventCounter()
        callbacks = CallbackList([a])
        callbacks.add(b)
        callbacks.on_event("reset", 1, 2)
        callbacks.on_iteration(1, 2)
        assert len(callbacks) == 2
        assert a["reset"] == b["reset"] == 1

    def test_tolerates_partial_implementations(self):
        class OnlyIteration:
            def __init__(self):
                self.count = 0

            def on_iteration(self, iteration, cost):
                self.count += 1

        cb = OnlyIteration()
        callbacks = CallbackList([cb])
        callbacks.on_event("reset", 1, 2)  # must not raise
        callbacks.on_iteration(1, 2)
        assert cb.count == 1


class TestRngHelpers:
    def test_ensure_generator_accepts_various_inputs(self):
        gen = np.random.default_rng(0)
        assert ensure_generator(gen) is gen
        assert isinstance(ensure_generator(5), np.random.Generator)
        assert isinstance(ensure_generator(None), np.random.Generator)
        assert isinstance(
            ensure_generator(np.random.SeedSequence(3)), np.random.Generator
        )

    def test_ensure_generator_deterministic_for_ints(self):
        a = ensure_generator(9).integers(0, 1000, 5)
        b = ensure_generator(9).integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_spawn_generators_independent_and_deterministic(self):
        gens_a = spawn_generators(3, 11)
        gens_b = spawn_generators(3, 11)
        draws_a = [g.integers(0, 10**9) for g in gens_a]
        draws_b = [g.integers(0, 10**9) for g in gens_b]
        assert draws_a == draws_b
        assert len(set(draws_a)) == 3

    def test_spawn_generators_from_generator(self):
        gens = spawn_generators(2, np.random.default_rng(0))
        assert len(gens) == 2

    def test_spawn_generators_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_generators(-1)

    def test_derive_seed_deterministic_and_distinct(self):
        seeds = [derive_seed(123, i) for i in range(10)]
        assert seeds == [derive_seed(123, i) for i in range(10)]
        assert len(set(seeds)) == 10
        assert all(0 <= s < 2**63 for s in seeds)

    def test_derive_seed_rejects_negative_index(self):
        with pytest.raises(ValueError):
            derive_seed(0, -1)
