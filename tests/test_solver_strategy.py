"""Strategy-layer tests: registry, specs, portfolios and the cross-solver
conformance suite.

The conformance suite is the contract behind ``repro.solvers``: *every*
registered strategy solves small instances of *every* registered problem
family it accepts (:mod:`repro.problems`), is deterministic under a seed,
honours ``stop_check`` within one ``check_period``, honours ``max_time``, and
returns a well-formed :class:`~repro.core.result.SolveResult`.  Anything that
passes here can be multi-walked, served, raced and cancelled by the upper
layers without special cases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategy import SearchStrategy, StrategyRun
from repro.costas.array import is_costas
from repro.exceptions import SolverError
from repro.models import CostasProblem, NQueensProblem
from repro.problems import get_family, list_families
from repro.solvers import (
    SolverSpec,
    build_solver,
    canonical_portfolio,
    get_solver,
    list_portfolios,
    list_solvers,
    portfolio_label,
    resolve_portfolio,
    resolve_spec,
    run_spec,
    solver_names,
)

#: Per-solver parameter overrides keeping the conformance runs fast and the
#: stop_check polling tight (check_period=1 makes "within one check_period"
#: sharp).
_FAST_PARAMS = {
    "adaptive": {"check_period": 1, "max_iterations": 200_000},
    "compiled": {"check_period": 1, "max_iterations": 200_000},
    "tabu": {"check_period": 1},
    "random-restart": {"check_period": 1},
    "dialectic": {"check_period": 1},
    "cp": {"check_period": 1},
}


def _spec(name: str) -> dict:
    return {"name": name, "params": _FAST_PARAMS[name]}


#: Small, quickly solvable orders per registered problem family.
_FAMILY_ORDERS = {"costas": 7, "queens": 8, "all-interval": 8, "magic-square": 3}


def _problems_for(info):
    """Every registered family the solver accepts, as (kind, factory) pairs."""
    problems = []
    for family in list_families():
        if (
            "permutation" in info.problem_kinds
            or family.name in info.problem_kinds
        ):
            order = _FAMILY_ORDERS[family.name]
            problems.append(
                (family.name, lambda f=family, o=order: f.make(o))
            )
    return problems


class TestRegistry:
    def test_all_expected_solvers_registered(self):
        assert solver_names() == [
            "adaptive", "compiled", "cp", "dialectic", "random-restart", "tabu"
        ]

    def test_aliases_resolve_to_canonical_entries(self):
        assert get_solver("as").name == "adaptive"
        assert get_solver("ADAPTIVE-SEARCH").name == "adaptive"
        assert get_solver("ds").name == "dialectic"
        assert get_solver("cp-backtracking").name == "cp"

    def test_unknown_solver_raises(self):
        with pytest.raises(SolverError, match="unknown solver"):
            get_solver("simulated-annealing")

    def test_every_entry_builds_a_strategy(self):
        for info in list_solvers():
            solver, rebuilt = build_solver(info.name)
            assert rebuilt is info
            assert isinstance(solver, SearchStrategy)

    def test_param_resolution_from_plain_dict(self):
        solver, info = build_solver({"name": "tabu", "params": {"tenure": 5}})
        assert solver.params.tenure == 5

    def test_unknown_param_raises_solver_error(self):
        with pytest.raises(SolverError, match="invalid parameters"):
            build_solver({"name": "tabu", "params": {"temperature": 0.5}})

    def test_bad_params_rejected_at_resolve_time(self):
        # Validation must not wait until a worker builds the solver.
        with pytest.raises(SolverError, match="invalid parameters"):
            resolve_spec({"name": "tabu", "params": {"temperature": 0.5}})
        with pytest.raises(SolverError, match="invalid parameters"):
            resolve_spec({"name": "tabu", "params": {"tenure": [8]}})

    def test_canonical_is_hashable_even_with_list_params(self):
        # JSON clients may send list values; the coalescing key must not
        # blow up on them (validation rejects them earlier, but canonical()
        # itself must stay total).
        spec = SolverSpec("adaptive", {"weights": [1, 2]})
        hash(spec.canonical())

    def test_invalid_param_value_raises_solver_error(self):
        with pytest.raises(SolverError, match="invalid parameters"):
            build_solver({"name": "tabu", "params": {"tenure": 0}})

    def test_param_defaults_exposed(self):
        defaults = get_solver("tabu").param_defaults()
        assert defaults["restart_after"] == 2_000
        assert "check_period" in defaults

    def test_adaptive_tuned_defaults_are_per_family(self):
        """Every family resolves its own tuned ASParameters table through the
        registry hook: the four tables are pairwise distinct and the Costas
        one is still the paper's."""
        from repro.core.params import ASParameters
        from repro.problems import get_family

        info = get_solver("adaptive")
        tables = {}
        for kind, order in (
            ("costas", 14),
            ("queens", 14),
            ("all-interval", 14),
            ("magic-square", 4),
        ):
            size = get_family(kind).instance_size(order)
            params = info.default_params(kind, size)
            assert isinstance(params, ASParameters), kind
            tables[kind] = params
        assert tables["costas"] == ASParameters.for_costas(14)
        seen = list(tables.values())
        assert len({repr(p) for p in seen}) == len(seen), "family tables collide"
        # And the generic fallback still answers unregistered kinds.
        assert isinstance(info.default_params("", 14), ASParameters)

    def test_build_solver_resolves_family_table(self):
        """build_solver with no explicit params picks the family's tuned
        table (magic-square: plateau probability 0.9, tenure 2)."""
        solver, _ = build_solver("adaptive", problem_kind="magic-square", order=16)
        assert solver.params.plateau_probability == 0.9
        assert solver.params.tabu_tenure == 2
        solver, _ = build_solver("adaptive", problem_kind="all-interval", order=12)
        assert solver.params.local_min_accept_probability == 0.5
        assert solver.params.reset_limit == 1
        solver, _ = build_solver("adaptive", problem_kind="queens", order=32)
        assert solver.params.reset_percentage == 0.15


class TestSpecsAndPortfolios:
    def test_resolve_spec_forms(self):
        assert resolve_spec(None) == SolverSpec("adaptive")
        assert resolve_spec("tabu") == SolverSpec("tabu")
        assert resolve_spec({"name": "ds"}).name == "dialectic"
        spec = resolve_spec({"name": "tabu", "params": {"tenure": 3}})
        assert spec.params == {"tenure": 3}

    def test_inline_portfolio_string(self):
        specs = resolve_portfolio("adaptive+tabu")
        assert [s.name for s in specs] == ["adaptive", "tabu"]
        assert portfolio_label(specs) == "adaptive+tabu"

    def test_named_portfolio(self):
        assert "mixed" in list_portfolios()
        specs = resolve_portfolio("mixed")
        assert [s.name for s in specs] == ["adaptive", "tabu", "dialectic"]

    def test_list_of_mixed_spec_forms(self):
        specs = resolve_portfolio(["tabu", {"name": "adaptive", "params": {"tabu_tenure": 3}}])
        assert [s.name for s in specs] == ["tabu", "adaptive"]
        assert specs[1].params == {"tabu_tenure": 3}

    def test_canonical_identity_is_order_insensitive_in_params(self):
        a = canonical_portfolio({"name": "tabu", "params": {"tenure": 3, "check_period": 4}})
        b = canonical_portfolio({"name": "tabu", "params": {"check_period": 4, "tenure": 3}})
        assert a == b

    def test_canonical_identity_distinguishes_solvers(self):
        assert canonical_portfolio("tabu") != canonical_portfolio("adaptive")
        assert canonical_portfolio("adaptive+tabu") != canonical_portfolio("tabu")

    def test_empty_portfolio_rejected(self):
        with pytest.raises(SolverError):
            resolve_portfolio([])


class TestConformance:
    """Every registered solver passes the same behavioural contract."""

    @pytest.mark.parametrize("name", solver_names())
    def test_solves_small_instances(self, name):
        info = get_solver(name)
        problems = _problems_for(info)
        # The CP baseline covers Costas only; every local-search strategy
        # must cover all four registered families.
        expected = 1 if info.problem_kinds == ("costas",) else len(list_families())
        assert len(problems) == expected
        for kind, factory in problems:
            result = run_spec(_spec(name), factory(), seed=0, problem_kind=kind)
            assert result.solved, f"{name} failed on {kind}: {result.summary()}"
            assert result.cost == 0
            # The family's own validator accepts the returned configuration.
            assert get_family(kind).validator(np.asarray(result.configuration))
            if kind == "costas":
                assert is_costas(result.configuration)

    @pytest.mark.parametrize("name", solver_names())
    def test_deterministic_under_seed(self, name):
        info = get_solver(name)
        for kind, factory in _problems_for(info):
            a = run_spec(_spec(name), factory(), seed=42, problem_kind=kind)
            b = run_spec(_spec(name), factory(), seed=42, problem_kind=kind)
            assert list(a.configuration) == list(b.configuration)
            assert (a.cost, a.iterations, a.solved) == (b.cost, b.iterations, b.solved)

    @pytest.mark.parametrize("name", solver_names())
    def test_honours_stop_check_within_one_check_period(self, name):
        # The solver must notice an already-set stop before doing any real
        # work: with check_period=1 it may complete at most one iteration.
        result = run_spec(
            _spec(name),
            CostasProblem(12),
            seed=0,
            problem_kind="costas",
            stop_check=lambda: True,
        )
        assert not result.solved
        assert result.stop_reason == "external_stop"
        assert result.iterations <= 1

    @pytest.mark.parametrize("name", solver_names())
    def test_honours_stop_check_mid_run(self, name):
        # First poll lets the run proceed, second poll stops it: the solver
        # must halt within one further check_period of iterations.
        calls = {"n": 0}

        def stop_after_first_poll():
            calls["n"] += 1
            return calls["n"] > 1

        params = dict(_FAST_PARAMS[name], check_period=1)
        result = run_spec(
            {"name": name, "params": params},
            CostasProblem(13),
            seed=3,
            problem_kind="costas",
            stop_check=stop_after_first_poll,
        )
        if not result.solved:  # a solve within 2 iterations would be legitimate
            assert result.stop_reason == "external_stop"
            assert result.iterations <= 2

    @pytest.mark.parametrize("name", solver_names())
    def test_honours_max_time(self, name):
        # An order far beyond what any strategy solves in 50 ms, so the clock
        # must be what ends the run.
        result = run_spec(
            _spec(name),
            CostasProblem(20),
            seed=0,
            problem_kind="costas",
            max_time=0.05,
        )
        assert not result.solved
        assert result.stop_reason == "max_time"

    @pytest.mark.parametrize("name", solver_names())
    def test_result_is_well_formed(self, name):
        info = get_solver(name)
        result = run_spec(_spec(name), CostasProblem(7), seed=1, problem_kind="costas")
        assert result.solver == (info.result_name or info.name)
        assert result.seed == 1
        assert result.wall_time >= 0.0
        assert result.iterations >= 0
        config = np.asarray(result.configuration)
        assert sorted(config.tolist()) == list(range(7))
        # The dict round-trip used by the process boundaries must be lossless.
        round_tripped = type(result).from_dict(result.as_dict())
        assert round_tripped.solver == result.solver
        assert list(round_tripped.configuration) == list(config)

    @pytest.mark.parametrize("name", ["adaptive", "tabu", "random-restart", "dialectic"])
    def test_callbacks_receive_iterations(self, name):
        from repro.core.callbacks import CallbackList, CostTraceRecorder

        trace = CostTraceRecorder()
        result = run_spec(
            _spec(name),
            CostasProblem(8),
            seed=0,
            problem_kind="costas",
            callbacks=CallbackList([trace]),
        )
        assert result.solved
        # Tabu-marking iterations do not move; every solver still reports at
        # least one iteration sample unless it solved during initialisation.
        if result.iterations > 0:
            assert len(trace) > 0

    def test_cp_rejects_non_costas_problems(self):
        with pytest.raises(SolverError, match="Costas"):
            run_spec(_spec("cp"), NQueensProblem(8), seed=0, problem_kind="queens")


class TestStrategyRun:
    def test_running_respects_target_cost(self):
        run = StrategyRun(CostasProblem(7), "x", 0, target_cost=5)
        assert not run.running(5)
        assert run.running(6)
        assert run.iteration == 1

    def test_running_respects_max_iterations_exactly(self):
        run = StrategyRun(CostasProblem(7), "x", 0, max_iterations=3)
        seen = 0
        while run.running(99):
            seen += 1
        assert seen == 3
        assert run.stop_reason == "max_iterations"

    def test_finish_reports_best_configuration(self):
        problem = CostasProblem(7)
        problem.initialise(0)
        run = StrategyRun(problem, "probe", 7)
        run.track_best(problem.cost())
        result = run.finish(extra={"tag": 1})
        assert result.solver == "probe"
        assert result.seed == 7
        assert result.extra == {"tag": 1}
        assert list(result.configuration) == list(problem.configuration())
