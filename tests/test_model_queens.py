"""Tests for the N-Queens Adaptive Search model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ASParameters, solve
from repro.exceptions import ModelError
from repro.models.queens import NQueensProblem

perm_strategy = st.integers(min_value=4, max_value=12).flatmap(
    lambda n: st.permutations(list(range(n)))
)


def brute_force_cost(perm) -> int:
    """Number of 'extra' queens per diagonal (reference implementation)."""
    n = len(perm)
    up = {}
    down = {}
    for i, v in enumerate(perm):
        up[i + v] = up.get(i + v, 0) + 1
        down[i - v] = down.get(i - v, 0) + 1
    return sum(c - 1 for c in up.values() if c > 1) + sum(
        c - 1 for c in down.values() if c > 1
    )


class TestCost:
    def test_requires_minimum_size(self):
        with pytest.raises(ModelError):
            NQueensProblem(3)

    @given(perm_strategy)
    def test_cost_matches_brute_force(self, perm):
        problem = NQueensProblem(len(perm))
        problem.set_configuration(perm)
        assert problem.cost() == brute_force_cost(perm)

    def test_known_solution_has_zero_cost(self):
        # A classic 6-queens solution.
        solution = [1, 3, 5, 0, 2, 4]
        problem = NQueensProblem(6)
        problem.set_configuration(solution)
        assert problem.cost() == 0
        assert problem.conflicts() == 0

    def test_identity_is_maximally_conflicting_on_one_diagonal(self):
        n = 6
        problem = NQueensProblem(n)
        problem.set_configuration(list(range(n)))
        assert problem.cost() == n - 1

    @given(perm_strategy)
    def test_variable_errors_count_attacks(self, perm):
        problem = NQueensProblem(len(perm))
        problem.set_configuration(perm)
        errors = problem.variable_errors()
        assert np.all(errors >= 0)
        assert (errors.sum() == 0) == (problem.cost() == 0)


class TestMoves:
    @given(perm_strategy, st.data())
    def test_incremental_swap_consistency(self, perm, data):
        problem = NQueensProblem(len(perm))
        problem.set_configuration(perm)
        i = data.draw(st.integers(min_value=0, max_value=len(perm) - 1))
        j = data.draw(st.integers(min_value=0, max_value=len(perm) - 1))
        before = problem.cost()
        delta = problem.swap_delta(i, j)
        after = problem.apply_swap(i, j)
        assert after == before + delta
        problem.check_consistency()
        assert problem.cost() == brute_force_cost(problem.configuration())

    def test_swap_deltas_sentinel(self):
        problem = NQueensProblem(6)
        problem.set_configuration([1, 3, 5, 0, 2, 4])
        deltas = problem.swap_deltas(2)
        assert deltas[2] == np.iinfo(np.int64).max


class TestSolving:
    @pytest.mark.parametrize("n", [8, 20, 50])
    def test_engine_solves(self, n):
        result = solve(
            NQueensProblem(n), seed=0, params=ASParameters.for_problem_size(n)
        )
        assert result.solved
        board = NQueensProblem(n)
        board.set_configuration(result.configuration)
        assert board.cost() == 0
        grid = board.board()
        assert grid.sum() == n
        assert np.all(grid.sum(axis=0) == 1)
        assert np.all(grid.sum(axis=1) == 1)
