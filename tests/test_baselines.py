"""Tests for the baseline solvers (Dialectic Search, Tabu, restart hill climbing, CP)."""

from __future__ import annotations

import pytest

from repro.baselines.cp_solver import CPBacktrackingSolver, CPParameters
from repro.baselines.dialectic import DialecticSearch, DialecticSearchParameters
from repro.baselines.random_restart import (
    RandomRestartHillClimbing,
    RandomRestartParameters,
)
from repro.baselines.tabu import TabuSearch, TabuSearchParameters
from repro.costas.array import is_costas
from repro.costas.database import KNOWN_COSTAS_COUNTS
from repro.models import CostasProblem, NQueensProblem


class TestDialecticSearch:
    def test_solves_small_costas(self):
        result = DialecticSearch().solve(CostasProblem(8), seed=0)
        assert result.solved
        assert is_costas(result.configuration)
        assert result.solver == "dialectic-search"
        assert result.iterations >= 0
        assert result.extra["greedy_steps"] >= 0

    def test_solves_nqueens(self):
        result = DialecticSearch().solve(NQueensProblem(10), seed=1)
        assert result.solved

    def test_budget_respected(self):
        params = DialecticSearchParameters(max_iterations=2)
        result = DialecticSearch(params).solve(CostasProblem(11), seed=0)
        assert result.iterations <= 2
        if not result.solved:
            assert result.stop_reason == "max_iterations"

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DialecticSearchParameters(perturbation_strength=0)
        with pytest.raises(ValueError):
            DialecticSearchParameters(max_no_improvement=0)
        with pytest.raises(ValueError):
            DialecticSearchParameters(max_iterations=0)

    def test_external_stop(self):
        result = DialecticSearch(
            DialecticSearchParameters(check_period=1)
        ).solve(CostasProblem(10), seed=0, stop_check=lambda: True)
        assert result.stop_reason in ("external_stop", "solved")

    def test_deterministic_given_seed(self):
        a = DialecticSearch().solve(CostasProblem(8), seed=5)
        b = DialecticSearch().solve(CostasProblem(8), seed=5)
        assert a.iterations == b.iterations
        assert list(a.configuration) == list(b.configuration)


class TestTabuSearch:
    def test_solves_small_costas(self):
        result = TabuSearch().solve(CostasProblem(7), seed=0)
        assert result.solved
        assert is_costas(result.configuration)
        assert result.solver == "tabu-search"

    def test_solves_queens(self):
        result = TabuSearch().solve(NQueensProblem(8), seed=0)
        assert result.solved

    def test_budget_respected(self):
        params = TabuSearchParameters(max_iterations=3)
        result = TabuSearch(params).solve(CostasProblem(10), seed=0)
        assert result.iterations <= 3

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TabuSearchParameters(tenure=0)
        with pytest.raises(ValueError):
            TabuSearchParameters(restart_after=0)
        with pytest.raises(ValueError):
            TabuSearchParameters(max_iterations=-1)


class TestRandomRestart:
    def test_solves_small_costas(self):
        result = RandomRestartHillClimbing().solve(CostasProblem(7), seed=0)
        assert result.solved
        assert is_costas(result.configuration)

    def test_budget_respected(self):
        params = RandomRestartParameters(max_steps=5)
        result = RandomRestartHillClimbing(params).solve(CostasProblem(10), seed=0)
        assert result.iterations <= 5

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RandomRestartParameters(max_sideways=-1)
        with pytest.raises(ValueError):
            RandomRestartParameters(max_steps=0)


class TestCPSolver:
    def test_finds_a_costas_array(self):
        result = CPBacktrackingSolver().solve(8, seed=0)
        assert result.solved
        assert is_costas(result.configuration)
        assert result.solver == "cp-backtracking"
        assert result.extra["nodes"] > 0

    def test_lex_and_dom_orders_agree_on_satisfiability(self):
        for order_name in ("lex", "dom"):
            result = CPBacktrackingSolver(CPParameters(variable_order=order_name)).solve(7)
            assert result.solved

    @pytest.mark.parametrize("order", [4, 5, 6, 7])
    def test_count_solutions_matches_published_counts(self, order):
        solver = CPBacktrackingSolver()
        assert solver.count_solutions(order) == KNOWN_COSTAS_COUNTS[order]

    def test_count_solutions_is_reproducible(self):
        """Regression for the unseeded-random fix: counting runs must not
        draw ambient entropy, so two solvers agree node-for-node."""
        a = CPBacktrackingSolver()
        b = CPBacktrackingSolver()
        assert a.count_solutions(6) == b.count_solutions(6)
        # Same machinery, same seed: the search statistics line up too.
        ra = CPBacktrackingSolver().solve(7, seed=123)
        rb = CPBacktrackingSolver().solve(7, seed=123)
        assert ra.extra["nodes"] == rb.extra["nodes"]
        assert list(ra.configuration) == list(rb.configuration)

    def test_node_budget_stops_search(self):
        result = CPBacktrackingSolver(CPParameters(max_nodes=3)).solve(12)
        assert not result.solved
        assert result.stop_reason == "max_iterations"

    def test_random_value_order_still_correct(self):
        result = CPBacktrackingSolver(
            CPParameters(random_value_order=True)
        ).solve(8, seed=11)
        assert result.solved
        assert is_costas(result.configuration)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CPParameters(variable_order="weird")
        with pytest.raises(ValueError):
            CPParameters(max_nodes=0)
        with pytest.raises(ValueError):
            CPParameters(max_time=0)
