"""Tests for the PermutationProblem interface and the functional adapter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import FunctionalPermutationProblem, PermutationProblem
from repro.exceptions import ModelError


def count_adjacent_equal_parity(perm: np.ndarray) -> int:
    """Toy cost: number of adjacent entries with the same parity."""
    return int(np.sum((perm[1:] % 2) == (perm[:-1] % 2)))


@pytest.fixture
def toy_problem():
    return FunctionalPermutationProblem(6, count_adjacent_equal_parity, name="parity")


class TestFunctionalProblem:
    def test_size_and_name(self, toy_problem):
        assert toy_problem.size == 6
        assert toy_problem.name == "parity"
        assert "parity" in toy_problem.describe()

    def test_initialise_returns_permutation(self, toy_problem, rng):
        config = toy_problem.initialise(rng)
        assert sorted(config) == list(range(6))
        assert np.array_equal(config, toy_problem.configuration())

    def test_set_configuration_validates(self, toy_problem):
        with pytest.raises(ModelError):
            toy_problem.set_configuration([0, 1, 2])
        with pytest.raises(ModelError):
            toy_problem.set_configuration([0, 0, 1, 2, 3, 4])

    def test_cost_matches_function(self, toy_problem):
        toy_problem.set_configuration([0, 2, 4, 1, 3, 5])
        assert toy_problem.cost() == count_adjacent_equal_parity(
            np.array([0, 2, 4, 1, 3, 5])
        )

    def test_swap_delta_matches_apply(self, toy_problem, rng):
        toy_problem.initialise(rng)
        before = toy_problem.cost()
        delta = toy_problem.swap_delta(0, 3)
        after = toy_problem.apply_swap(0, 3)
        assert after - before == delta

    def test_swap_delta_is_side_effect_free(self, toy_problem, rng):
        toy_problem.initialise(rng)
        config = toy_problem.configuration()
        toy_problem.swap_delta(1, 4)
        assert np.array_equal(config, toy_problem.configuration())

    def test_default_swap_deltas_matches_loop(self, toy_problem, rng):
        toy_problem.initialise(rng)
        deltas = toy_problem.swap_deltas(2)
        for j in range(toy_problem.size):
            if j == 2:
                assert deltas[j] == np.iinfo(np.int64).max
            else:
                assert deltas[j] == toy_problem.swap_delta(2, j)

    def test_default_variable_errors_nonnegative(self, toy_problem, rng):
        toy_problem.initialise(rng)
        errors = toy_problem.variable_errors()
        assert errors.shape == (6,)
        assert np.all(errors >= 0)

    def test_explicit_variable_errors_validated(self):
        problem = FunctionalPermutationProblem(
            4,
            count_adjacent_equal_parity,
            variable_errors_fn=lambda perm: np.zeros(3),
        )
        problem.set_configuration([0, 1, 2, 3])
        with pytest.raises(ModelError):
            problem.variable_errors()

    def test_is_solution(self):
        problem = FunctionalPermutationProblem(4, lambda perm: 0)
        problem.set_configuration([0, 1, 2, 3])
        assert problem.is_solution()

    def test_custom_reset_default_is_none(self, toy_problem, rng):
        assert toy_problem.custom_reset(rng) is None

    def test_check_consistency_default_is_noop(self, toy_problem):
        toy_problem.check_consistency()


class TestBaseClassValidation:
    def test_minimum_size(self):
        with pytest.raises(ModelError):
            FunctionalPermutationProblem(1, lambda perm: 0)

    def test_abstract_base_cannot_instantiate(self):
        with pytest.raises(TypeError):
            PermutationProblem(5)  # type: ignore[abstract]
