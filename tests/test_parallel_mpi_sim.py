"""Tests for the simulated message-passing layer and multi-walk termination protocol."""

from __future__ import annotations

import pytest

from repro.core.params import ASParameters
from repro.costas.array import is_costas
from repro.exceptions import ParallelExecutionError
from repro.models import CostasProblem
from repro.parallel.mpi_sim import SimulatedCommunicator, SimulatedMultiWalk


class TestSimulatedCommunicator:
    def test_send_probe_recv_roundtrip(self):
        comm = SimulatedCommunicator(3)
        assert not comm.iprobe(1)
        comm.isend(0, 1, "hello", {"x": 1})
        assert comm.iprobe(1)
        assert comm.iprobe(1, tag="hello")
        assert not comm.iprobe(1, tag="other")
        message = comm.recv(1)
        assert message.source == 0 and message.payload == {"x": 1}
        assert comm.recv(1) is None

    def test_recv_by_tag_skips_other_messages(self):
        comm = SimulatedCommunicator(2)
        comm.isend(0, 1, "a")
        comm.isend(0, 1, "b")
        got = comm.recv(1, tag="b")
        assert got.tag == "b"
        assert comm.pending(1) == 1

    def test_broadcast_others(self):
        comm = SimulatedCommunicator(4)
        comm.broadcast_others(2, "done")
        assert comm.sent_messages == 3
        for rank in range(4):
            assert comm.iprobe(rank) == (rank != 2)

    def test_rank_validation(self):
        comm = SimulatedCommunicator(2)
        with pytest.raises(ParallelExecutionError):
            comm.isend(0, 5, "x")
        with pytest.raises(ParallelExecutionError):
            comm.iprobe(-1)
        with pytest.raises(ParallelExecutionError):
            SimulatedCommunicator(0)


class TestSimulatedMultiWalk:
    def _multiwalk(self, order=9, **param_overrides):
        params = ASParameters.for_costas(order, **param_overrides)
        return SimulatedMultiWalk(lambda: CostasProblem(order), params)

    def test_runs_all_ranks_and_identifies_winner(self):
        sim = self._multiwalk()
        outcomes, comm = sim.run(seeds=[1, 2, 3, 4])
        assert len(outcomes) == 4
        winner = SimulatedMultiWalk.winner(outcomes)
        assert winner is not None
        assert winner.result.solved
        assert is_costas(winner.result.configuration)
        # The winner is the rank with the fewest iterations among the solved ones.
        solved_iters = [o.result.iterations for o in outcomes if o.result.solved]
        assert winner.result.iterations == min(solved_iters)
        # Termination broadcast: size - 1 messages.
        assert comm.sent_messages == 3

    def test_losers_stop_at_next_poll(self):
        sim = self._multiwalk(order=9, check_period=16)
        outcomes, _ = sim.run(seeds=[5, 6, 7])
        winner = SimulatedMultiWalk.winner(outcomes)
        poll = 16
        bound = ((winner.result.iterations // poll) + 1) * poll
        for outcome in outcomes:
            if not outcome.winner:
                assert outcome.iterations_executed <= max(bound, outcome.result.iterations)
                assert outcome.iterations_executed <= bound or outcome.result.solved

    def test_parallel_iterations_is_critical_path(self):
        sim = self._multiwalk()
        outcomes, _ = sim.run(seeds=[8, 9])
        assert SimulatedMultiWalk.parallel_iterations(outcomes) == max(
            o.iterations_executed for o in outcomes
        )

    def test_no_solution_case(self):
        params = ASParameters.for_costas(12, max_iterations=3)
        sim = SimulatedMultiWalk(lambda: CostasProblem(12), params)
        outcomes, comm = sim.run(seeds=[1, 2])
        assert SimulatedMultiWalk.winner(outcomes) is None
        assert comm.sent_messages == 0

    def test_requires_at_least_one_seed(self):
        sim = self._multiwalk()
        with pytest.raises(ParallelExecutionError):
            sim.run(seeds=[])
        with pytest.raises(ParallelExecutionError):
            SimulatedMultiWalk.parallel_iterations([])

    def test_max_iterations_override(self):
        sim = self._multiwalk(order=12)
        outcomes, _ = sim.run(seeds=[1, 2], max_iterations=5)
        assert all(o.result.iterations <= 5 for o in outcomes)

    def test_more_walks_never_slower_in_iterations(self):
        # Adding walks can only decrease (or keep equal) the winning iteration count.
        sim = self._multiwalk(order=10)
        few, _ = sim.run(seeds=[1, 2])
        many, _ = sim.run(seeds=[1, 2, 3, 4, 5, 6])
        few_best = min(o.result.iterations for o in few if o.result.solved)
        many_best = min(o.result.iterations for o in many if o.result.solved)
        assert many_best <= few_best
