"""Tests for the radar ambiguity utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.costas.ambiguity import (
    ambiguity_matrix,
    coincidence_count,
    hop_waveform,
    max_offpeak_coincidences,
    sidelobe_histogram,
    waveform_ambiguity,
)
from repro.costas.array import is_costas
from repro.costas.constructions import welch_construction

permutations = st.integers(min_value=2, max_value=9).flatmap(
    lambda n: st.permutations(list(range(n)))
)


class TestCoincidences:
    def test_zero_shift_counts_all_marks(self, example_costas_5):
        assert coincidence_count(example_costas_5, 0, 0) == 5

    def test_large_shift_counts_nothing(self, example_costas_5):
        assert coincidence_count(example_costas_5, 5, 0) == 0
        assert coincidence_count(example_costas_5, 0, 5) == 0

    @given(permutations)
    def test_costas_iff_offpeak_at_most_one(self, perm):
        assert (max_offpeak_coincidences(perm) <= 1) == is_costas(perm)

    @given(permutations)
    def test_matrix_matches_pointwise_counts(self, perm):
        n = len(perm)
        A = ambiguity_matrix(perm)
        rng = np.random.default_rng(0)
        for _ in range(5):
            dt = int(rng.integers(-(n - 1), n))
            df = int(rng.integers(-(n - 1), n))
            assert A[df + n - 1, dt + n - 1] == coincidence_count(perm, dt, df)

    @given(permutations)
    def test_matrix_is_symmetric_under_negation(self, perm):
        # Shifting by (dt, df) and by (-dt, -df) give the same count.
        A = ambiguity_matrix(perm)
        assert np.array_equal(A, A[::-1, ::-1])

    def test_total_coincidences_equal_pairs(self, example_costas_5):
        # Summing the off-peak half of the matrix counts each ordered pair once.
        n = len(example_costas_5)
        A = ambiguity_matrix(example_costas_5)
        assert A.sum() == n * n  # n at the peak + n(n-1) ordered pairs

    def test_sidelobe_histogram_for_costas(self, example_costas_5):
        hist = sidelobe_histogram(example_costas_5)
        assert set(hist) <= {0, 1}
        assert hist.get(1, 0) == 5 * 4  # each ordered pair produces one unit sidelobe

    def test_welch_array_has_thumbtack_ambiguity(self):
        array = welch_construction(12)
        assert max_offpeak_coincidences(array.to_array()) == 1


class TestWaveform:
    def test_hop_waveform_shapes(self, example_costas_5):
        t, x = hop_waveform(example_costas_5, samples_per_chip=8)
        assert t.shape == x.shape == (5 * 8,)
        assert np.allclose(np.abs(x), 1.0)

    def test_hop_waveform_validates_samples(self, example_costas_5):
        with pytest.raises(ValueError):
            hop_waveform(example_costas_5, samples_per_chip=0)

    def test_waveform_ambiguity_peak_is_normalised_and_central(self, example_costas_5):
        _, x = hop_waveform(example_costas_5, samples_per_chip=4)
        A = waveform_ambiguity(x, n_doppler=21, max_doppler=0.5)
        assert A.shape == (21, 2 * x.size - 1)
        assert A.max() == pytest.approx(1.0)
        centre = np.unravel_index(np.argmax(A), A.shape)
        assert centre[1] == x.size - 1  # zero delay
        assert abs(centre[0] - 10) <= 1  # zero Doppler bin (middle row)

    def test_waveform_ambiguity_rejects_bad_input(self):
        with pytest.raises(ValueError):
            waveform_ambiguity(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            waveform_ambiguity(np.array([]))
