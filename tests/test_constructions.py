"""Tests for the Welch / Lempel / Golomb constructions and corner deletion."""

from __future__ import annotations

import pytest

from repro.costas.array import CostasArray, is_costas
from repro.costas.constructions import (
    available_constructions,
    construct,
    constructible_orders,
    corner_deletion,
    golomb_construction,
    lempel_construction,
    welch_construction,
)
from repro.costas.symmetry import transpose
from repro.exceptions import ConstructionError


class TestWelch:
    @pytest.mark.parametrize("order", [2, 4, 6, 10, 12, 16, 18, 22])
    def test_produces_costas_array(self, order):
        array = welch_construction(order)
        assert array.order == order
        assert is_costas(array.to_array())

    def test_rejects_non_prime_plus_one(self):
        with pytest.raises(ConstructionError):
            welch_construction(7)  # 8 is not prime

    def test_rejects_nonpositive_order(self):
        with pytest.raises(ConstructionError):
            welch_construction(0)

    def test_shift_produces_different_costas_array(self):
        a = welch_construction(10, shift=0)
        b = welch_construction(10, shift=3)
        assert a.permutation != b.permutation
        assert is_costas(b.to_array())

    def test_explicit_root_validated(self):
        with pytest.raises(ConstructionError):
            welch_construction(10, root=10)  # 10 is not a primitive root mod 11
        array = welch_construction(10, root=2)  # 2 is a primitive root mod 11
        assert is_costas(array.to_array())


class TestLempelGolomb:
    @pytest.mark.parametrize("order", [3, 5, 6, 7, 9, 11, 14, 15])
    def test_lempel_produces_costas_array(self, order):
        array = lempel_construction(order)
        assert array.order == order
        assert is_costas(array.to_array())

    @pytest.mark.parametrize("order", [3, 5, 6, 7, 9, 11, 14, 15])
    def test_golomb_produces_costas_array(self, order):
        array = golomb_construction(order)
        assert array.order == order
        assert is_costas(array.to_array())

    def test_lempel_is_symmetric(self):
        # The Lempel construction yields arrays symmetric about the main diagonal.
        array = lempel_construction(9)
        assert list(transpose(array.to_array())) == list(array.to_array())

    def test_rejects_non_prime_power(self):
        with pytest.raises(ConstructionError):
            lempel_construction(10)  # 12 is not a prime power
        with pytest.raises(ConstructionError):
            golomb_construction(10)

    def test_golomb_with_invalid_generator(self):
        with pytest.raises(ConstructionError):
            golomb_construction(5, alpha=1)  # 1 is never primitive for q > 2

    def test_golomb_equals_lempel_when_generators_match(self):
        field_order = 11
        order = field_order - 2
        lempel = lempel_construction(order)
        golomb = golomb_construction(order, alpha=2, beta=2) if _is_primitive_mod(2, 11) else None
        if golomb is not None:
            assert golomb.permutation == lempel_constructed_with(2, order).permutation


def _is_primitive_mod(g: int, p: int) -> bool:
    return {pow(g, k, p) for k in range(1, p)} == set(range(1, p))


def lempel_constructed_with(generator: int, order: int) -> CostasArray:
    return lempel_construction(order, generator=generator)


class TestCornerDeletion:
    def test_deletion_from_welch(self):
        parent = welch_construction(12)
        # The W1 array always has a mark with value 1 (1-based) in its last column.
        child = corner_deletion(parent)
        assert child.order == parent.order - 1
        assert is_costas(child.to_array())

    def test_requested_corner_must_hold_a_mark(self):
        array = CostasArray.from_one_based([3, 4, 2, 1, 5])
        # bottom-left corner would need permutation[0] == 0 (value 1).
        with pytest.raises(ConstructionError):
            corner_deletion(array, corner="bottom-left")

    def test_unknown_corner_name(self):
        array = CostasArray.from_one_based([3, 4, 2, 1, 5])
        with pytest.raises(ConstructionError):
            corner_deletion(array, corner="middle")

    def test_auto_requires_some_corner_mark(self):
        # Find a small Costas array with no mark in any corner and check that
        # corner deletion refuses it.
        from repro.costas.enumeration import enumerate_costas_arrays

        cornerless = None
        for order in (5, 6, 7):
            for array in enumerate_costas_arrays(order):
                p = array.permutation
                if p[0] not in (0, order - 1) and p[-1] not in (0, order - 1):
                    cornerless = array
                    break
            if cornerless is not None:
                break
        assert cornerless is not None, "expected some cornerless Costas array"
        with pytest.raises(ConstructionError):
            corner_deletion(cornerless)


class TestConstructDispatcher:
    @pytest.mark.parametrize("order", list(range(2, 24)))
    def test_construct_any_applicable_order(self, order):
        names = available_constructions(order)
        parent_names = available_constructions(order + 1)
        if not names and not parent_names:
            pytest.skip(f"no construction known for order {order}")
        try:
            array = construct(order)
        except ConstructionError:
            # corner-deletion fallback may legitimately fail if the parent has
            # no corner mark; only direct constructions are guaranteed.
            if names:
                raise
            pytest.skip(f"corner deletion not applicable at order {order}")
        assert array.order == order
        assert is_costas(array.to_array())

    def test_construct_with_explicit_method(self):
        assert construct(10, method="welch").order == 10
        with pytest.raises(ConstructionError):
            construct(10, method="nonsense")

    def test_available_constructions(self):
        assert "welch" in available_constructions(10)  # 11 prime
        assert "lempel" in available_constructions(7)  # 9 = 3^2
        assert available_constructions(31 - 1) == ["welch", "lempel", "golomb"]

    def test_constructible_orders_map(self):
        table = constructible_orders(20)
        assert set(table).issubset(set(range(1, 21)))
        assert all(names for names in table.values())

    def test_unconstructible_order_raises(self):
        # 32 is the famous open order: 33 is not prime, 34 is not a prime power,
        # and the order-33 fallback is also unavailable.
        with pytest.raises(ConstructionError):
            construct(32)
