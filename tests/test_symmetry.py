"""Tests for the dihedral symmetry operations on Costas arrays."""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.costas.array import is_costas, is_permutation
from repro.costas.symmetry import (
    SYMMETRY_NAMES,
    all_symmetries,
    canonical_form,
    complement,
    orbit,
    reverse,
    rotate90,
    transpose,
)

permutations = st.integers(min_value=2, max_value=9).flatmap(
    lambda n: st.permutations(list(range(n)))
)


class TestGenerators:
    @given(permutations)
    def test_reverse_is_an_involution(self, perm):
        assert list(reverse(reverse(perm))) == list(perm)

    @given(permutations)
    def test_complement_is_an_involution(self, perm):
        assert list(complement(complement(perm))) == list(perm)

    @given(permutations)
    def test_transpose_is_an_involution(self, perm):
        assert list(transpose(transpose(perm))) == list(perm)

    @given(permutations)
    def test_rotate90_has_order_four(self, perm):
        rotated = perm
        for _ in range(4):
            rotated = rotate90(rotated)
        assert list(rotated) == list(perm)

    @given(permutations)
    def test_all_operations_return_permutations(self, perm):
        for op in (reverse, complement, transpose, rotate90):
            assert is_permutation(op(perm))

    def test_transpose_is_inverse_permutation(self):
        perm = [2, 0, 3, 1]
        inv = transpose(perm)
        for i, v in enumerate(perm):
            assert inv[v] == i


class TestOrbit:
    def test_all_symmetries_has_eight_entries(self, example_costas_5):
        images = all_symmetries(example_costas_5)
        assert len(images) == len(SYMMETRY_NAMES) == 8

    @given(permutations)
    def test_orbit_size_divides_eight(self, perm):
        size = len(orbit(perm))
        assert size in (1, 2, 4, 8)

    @given(permutations)
    def test_orbit_closed_under_generators(self, perm):
        members = set(orbit(perm))
        for member in list(members):
            for op in (reverse, complement, transpose):
                assert tuple(int(v) for v in op(np.array(member))) in members

    def test_symmetries_preserve_costas_property(self, example_costas_5):
        for image in all_symmetries(example_costas_5):
            assert is_costas(image)

    @given(permutations)
    def test_symmetries_preserve_costas_property_generally(self, perm):
        original = is_costas(perm)
        for image in all_symmetries(perm):
            assert is_costas(image) == original


class TestCanonicalForm:
    @given(permutations)
    def test_canonical_is_invariant_on_the_orbit(self, perm):
        canonical = tuple(canonical_form(perm))
        for image in all_symmetries(perm):
            assert tuple(canonical_form(image)) == canonical

    @given(permutations)
    def test_canonical_is_minimal_member(self, perm):
        assert tuple(canonical_form(perm)) == min(orbit(perm))
