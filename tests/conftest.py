"""Shared fixtures and hypothesis strategies for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Keep hypothesis fast and deterministic-ish in CI: the default example count
# is overkill for the small combinatorial inputs used here.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic NumPy generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def example_costas_5():
    """The order-5 Costas array used as the running example in the paper ([3,4,2,1,5])."""
    return [2, 3, 1, 0, 4]  # 0-based version of the paper's [3, 4, 2, 1, 5]


@pytest.fixture
def small_orders():
    """Orders small enough for exhaustive cross-checks."""
    return [3, 4, 5, 6, 7]
