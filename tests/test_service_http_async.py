"""Tests for the asyncio HTTP front-end.

Byte-compatibility is enforced by **reuse**: the threaded front-end's
regression test classes (`test_service_http`, `test_service_families`) run
here *unmodified* against :class:`AsyncServiceHTTPServer` — only the
``server`` fixture changes.  The async-only capabilities (``POST
/solve-batch``, ``GET /events/<id>``) get their own coverage below,
including the error paths: malformed batch bodies, per-item failures that
must not poison the batch, SSE disconnects mid-solve, and 503 semantics
under batch.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro.service.api import ServiceConfig
from repro.service.http_async import AsyncServiceHTTPServer

from test_service_families import TestChunkedBodiesRejected as _FamiliesChunked
from test_service_families import TestHTTPAllFamilies as _FamiliesHTTP
from test_service_http import TestCoalescedBurstOverHTTP as _Burst
from test_service_http import TestEndpoints as _Endpoints
from test_service_http import _call


@pytest.fixture()
def server(tmp_path):
    srv = AsyncServiceHTTPServer(
        ("127.0.0.1", 0),
        config=ServiceConfig(
            store_path=str(tmp_path / "async-http.db"),
            n_workers=2,
            default_max_time=120.0,
        ),
    )
    srv.start_background()
    yield srv
    srv.stop(drain=False)


class TestAsyncEndpoints(_Endpoints):
    """The whole threaded-endpoint suite, unmodified, against the async
    server (the two tests that build their own server are overridden to
    build the async one)."""

    def test_cancel_endpoint(self, tmp_path):
        srv = AsyncServiceHTTPServer(
            ("127.0.0.1", 0),
            config=ServiceConfig(
                store_path=str(tmp_path / "cx.db"), n_workers=1, default_max_time=300.0
            ),
        )
        srv.start_background()
        try:
            # Park the single worker on a hard order, then cancel a queued one.
            _call(srv, "POST", "/solve", {"order": 21, "use_constructions": False})
            status, payload = _call(
                srv, "POST", "/solve", {"order": 22, "use_constructions": False}
            )
            assert status == 202
            rid = payload["request_id"]
            status, payload = _call(srv, "POST", f"/cancel/{rid}")
            assert status == 200 and payload["cancelled"]
            status, payload = _call(srv, "GET", f"/result/{rid}")
            assert status == 409 and payload["status"] == "cancelled"
            assert _call(srv, "POST", f"/cancel/{rid}")[0] == 409
            assert _call(srv, "POST", "/cancel/ghost")[0] == 404
        finally:
            srv.stop(drain=False)

    def test_backpressure_returns_503(self, tmp_path):
        srv = AsyncServiceHTTPServer(
            ("127.0.0.1", 0),
            config=ServiceConfig(
                store_path=str(tmp_path / "bp.db"),
                n_workers=1,
                max_queue_depth=1,
                default_max_time=300.0,
            ),
        )
        srv.start_background()
        try:
            _call(srv, "POST", "/solve", {"order": 23, "use_constructions": False})
            time.sleep(0.3)
            _call(srv, "POST", "/solve", {"order": 24, "use_constructions": False})
            status, payload = _call(
                srv, "POST", "/solve", {"order": 25, "use_constructions": False}
            )
            assert status == 503 and payload.get("retry") is True
        finally:
            srv.stop(drain=False)


class TestAsyncCoalescedBurst(_Burst):
    pass


class TestAsyncAllFamilies(_FamiliesHTTP):
    pass


class TestAsyncChunkedBodiesRejected(_FamiliesChunked):
    pass


class TestKeepAlive:
    def test_many_requests_on_one_connection(self, server):
        """HTTP/1.1 keep-alive: several requests ride one TCP connection."""
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            for _ in range(5):
                conn.request(
                    "POST",
                    "/solve",
                    json.dumps({"order": 12, "wait": True}),
                    {"Content-Type": "application/json"},
                )
                resp = conn.getresponse()
                payload = json.loads(resp.read())
                assert resp.status == 200 and payload["solved"]
        finally:
            conn.close()


class TestBatchEndpoint:
    def test_batch_of_constructibles_resolves_inline(self, server):
        items = [
            {"order": 12, "kind": "costas"},
            {"order": 16, "kind": "queens"},
            {"order": 10, "kind": "all-interval"},
        ]
        status, payload = _call(
            server, "POST", "/solve-batch", {"items": items, "wait": True}
        )
        assert status == 200 and payload["count"] == 3
        for item, result in zip(items, payload["results"]):
            assert result["status"] == "done", result
            assert result["solved"] and result["kind"] == item["kind"]
            assert result["source"] in ("construction", "store")
        # No search job ran: the construction tier answered everything.
        assert server.service.pool.stats()["jobs_done"] == 0
        status, stats = _call(server, "GET", "/stats")
        assert stats["batches"] == 1

    def test_mixed_unknown_kinds_fail_per_item_not_whole_batch(self, server):
        items = [
            {"order": 12, "kind": "costas"},
            {"order": 9, "kind": "sudoku"},  # unknown family
            {"order": 2, "kind": "queens"},  # below min_order
            {"order": 12, "kind": "queens", "solver": "cp"},  # kind mismatch
            {"order": 16, "kind": "queens"},
        ]
        status, payload = _call(
            server, "POST", "/solve-batch", {"items": items, "wait": True}
        )
        assert status == 200 and payload["count"] == 5
        results = payload["results"]
        assert results[0]["status"] == "done" and results[0]["solved"]
        assert results[4]["status"] == "done" and results[4]["solved"]
        for bad in (results[1], results[2], results[3]):
            assert bad["status"] == "error" and bad["code"] == 400, bad
        assert "unknown problem kind" in results[1]["error"]
        assert "order must be >=" in results[2]["error"]
        assert "does not accept" in results[3]["error"]

    def test_empty_batch_is_400(self, server):
        status, payload = _call(server, "POST", "/solve-batch", {"items": []})
        assert status == 400 and "at least one" in payload["error"]

    def test_non_list_items_is_400(self, server):
        status, _ = _call(server, "POST", "/solve-batch", {"items": {"order": 12}})
        assert status == 400
        status, _ = _call(server, "POST", "/solve-batch", {"order": 12})
        assert status == 400
        # A non-object item fails that slot, not the request.
        status, payload = _call(
            server, "POST", "/solve-batch", {"items": [5, {"order": 12}], "wait": True}
        )
        assert status == 200
        assert payload["results"][0]["status"] == "error"
        assert payload["results"][0]["code"] == 400
        assert payload["results"][1]["status"] == "done"

    def test_oversized_batch_is_400(self, tmp_path):
        srv = AsyncServiceHTTPServer(
            ("127.0.0.1", 0),
            config=ServiceConfig(
                store_path=str(tmp_path / "cap.db"),
                n_workers=1,
                max_batch_items=4,
            ),
        )
        srv.start_background()
        try:
            items = [{"order": 12}] * 5
            status, payload = _call(srv, "POST", "/solve-batch", {"items": items})
            assert status == 400 and "exceeds" in payload["error"]
        finally:
            srv.stop(drain=False)

    def test_identical_items_coalesce_onto_one_job(self, server):
        items = [{"order": 14, "use_constructions": False}] * 6
        status, payload = _call(
            server, "POST", "/solve-batch", {"items": items, "wait": True}
        )
        assert status == 200
        assert all(r["status"] == "done" and r["solved"] for r in payload["results"])
        # Six identical items share one search (coalesced in the same pass).
        assert server.service.pool.stats()["jobs_done"] <= 2
        assert server.service.scheduler.stats()["coalesced"] >= 5

    def test_saturation_is_per_item_503_semantics(self, tmp_path):
        srv = AsyncServiceHTTPServer(
            ("127.0.0.1", 0),
            config=ServiceConfig(
                store_path=str(tmp_path / "sat.db"),
                n_workers=1,
                max_queue_depth=1,
                default_max_time=300.0,
            ),
        )
        srv.start_background()
        try:
            # Park the worker, then batch three distinct search instances:
            # the queue (depth 1) admits at most the first; the rest must be
            # per-item 503 slots, not a whole-batch failure.
            _call(srv, "POST", "/solve", {"order": 23, "use_constructions": False})
            time.sleep(0.3)
            items = [
                {"order": 24, "use_constructions": False},
                {"order": 25, "use_constructions": False},
                {"order": 26, "use_constructions": False},
            ]
            status, payload = _call(srv, "POST", "/solve-batch", {"items": items})
            assert status == 200
            results = payload["results"]
            saturated = [r for r in results if r.get("code") == 503]
            admitted = [r for r in results if r.get("status") == "pending"]
            assert saturated, results
            assert all(r.get("retry") is True for r in saturated)
            assert len(admitted) + len(saturated) == 3
            # Admitted ids are pollable like any /solve submission.
            for r in admitted:
                code, _ = _call(srv, "GET", f"/result/{r['request_id']}")
                assert code == 202
        finally:
            srv.stop(drain=False)

    def test_batch_without_wait_returns_pollable_ids(self, server):
        items = [{"order": 9, "use_constructions": False, "use_store": False}]
        status, payload = _call(server, "POST", "/solve-batch", {"items": items})
        assert status == 200
        (result,) = payload["results"]
        assert result["status"] == "pending"
        rid = result["request_id"]
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            code, body = _call(server, "GET", f"/result/{rid}")
            if code == 200:
                assert body["solved"]
                return
            time.sleep(0.05)
        pytest.fail("batch-submitted request never resolved")


def _open_sse(server, request_id, timeout=60.0):
    """Raw-socket SSE client; returns (sock, buffered file) after headers."""
    sock = socket.create_connection(("127.0.0.1", server.port), timeout=timeout)
    sock.sendall(
        f"GET /events/{request_id} HTTP/1.1\r\n"
        f"Host: 127.0.0.1\r\nAccept: text/event-stream\r\n\r\n".encode()
    )
    reader = sock.makefile("rb")
    status_line = reader.readline()
    headers = {}
    while True:
        line = reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    return sock, reader, status_line, headers


def _read_events(reader, *, until_terminal=True, deadline=120.0):
    """Parse SSE blocks into (event, data) tuples."""
    events = []
    block: list = []
    t0 = time.monotonic()
    while time.monotonic() - t0 < deadline:
        line = reader.readline()
        if not line:
            break
        line = line.rstrip(b"\r\n")
        if line:
            block.append(line.decode())
            continue
        if not block:
            continue
        name = next((l[7:] for l in block if l.startswith("event: ")), None)
        data = next((l[6:] for l in block if l.startswith("data: ")), None)
        block = []
        if name is None:  # keep-alive comment
            continue
        events.append((name, json.loads(data)))
        if until_terminal and name in ("done", "failed", "cancelled"):
            break
    return events


class TestEventsEndpoint:
    def test_unknown_request_id_is_404(self, server):
        sock, reader, status_line, _ = _open_sse(server, "ghost")
        assert b"404" in status_line
        sock.close()

    def test_settled_request_streams_snapshot_and_done(self, server):
        status, payload = _call(server, "POST", "/solve", {"order": 12, "wait": True})
        assert status == 200
        rid = payload["request_id"]
        sock, reader, status_line, headers = _open_sse(server, rid)
        assert b"200" in status_line
        assert headers["content-type"] == "text/event-stream"
        events = _read_events(reader)
        sock.close()
        names = [name for name, _ in events]
        assert names[0] == "status" and names[-1] == "done"
        done = events[-1][1]
        assert done["solved"] and done["request_id"] == rid

    def test_search_request_streams_progress_then_done(self, tmp_path):
        # A tight progress interval guarantees samples arrive before even a
        # lucky n=16 walk can finish.
        server = AsyncServiceHTTPServer(
            ("127.0.0.1", 0),
            config=ServiceConfig(
                store_path=str(tmp_path / "sse-progress.db"),
                n_workers=2,
                default_max_time=120.0,
                progress_interval=0.02,
            ),
        )
        server.start_background()
        try:
            self._stream_progress(server)
        finally:
            server.stop(drain=False)

    def _stream_progress(self, server):
        status, payload = _call(
            server,
            "POST",
            "/solve",
            {"order": 16, "use_constructions": False, "use_store": False},
        )
        assert status == 202
        rid = payload["request_id"]
        sock, reader, status_line, _ = _open_sse(server, rid)
        events = _read_events(reader)
        sock.close()
        names = [name for name, _ in events]
        assert names[0] == "status"
        assert names[-1] == "done"
        progress = [data for name, data in events if name == "progress"]
        assert progress, f"no progress events in {names}"
        sample = progress[0]
        assert sample["iteration"] >= 0 and "cost" in sample
        assert sample["request_id"] == rid
        # The stream ended: its subscription must be gone.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if server.service.stats()["progress_subscribers"] == 0:
                break
            time.sleep(0.05)
        assert server.service.stats()["progress_subscribers"] == 0

    def test_client_disconnect_mid_solve_releases_subscription(self, tmp_path):
        """An SSE client that vanishes mid-solve must not leak its callback:
        the server notices the dead peer and unsubscribes."""
        srv = AsyncServiceHTTPServer(
            ("127.0.0.1", 0),
            config=ServiceConfig(
                store_path=str(tmp_path / "sse.db"),
                n_workers=1,
                default_max_time=300.0,
            ),
        )
        srv.start_background()
        try:
            status, payload = _call(
                srv, "POST", "/solve", {"order": 22, "use_constructions": False}
            )
            assert status == 202
            rid = payload["request_id"]
            sock, reader, status_line, _ = _open_sse(srv, rid)
            assert b"200" in status_line
            # Read the initial snapshot, then vanish without saying goodbye.
            events = _read_events(reader, until_terminal=False, deadline=1.5)
            assert events and events[0][0] == "status"
            assert srv.service.stats()["progress_subscribers"] == 1
            # Close the file object too: makefile() holds a dup of the fd,
            # and the FIN only goes out once both are gone.
            reader.close()
            sock.close()
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                if srv.service.stats()["progress_subscribers"] == 0:
                    break
                time.sleep(0.1)
            assert srv.service.stats()["progress_subscribers"] == 0
            # The abandoned request is still live and cancellable.
            code, body = _call(srv, "POST", f"/cancel/{rid}")
            assert code == 200 and body["cancelled"]
        finally:
            srv.stop(drain=False)

    def test_coalesced_requests_each_get_their_own_stream(self, server):
        """Two requests sharing one solve both see progress and both finish."""
        body = {"order": 15, "use_constructions": False, "use_store": False}
        status1, p1 = _call(server, "POST", "/solve", body)
        status2, p2 = _call(server, "POST", "/solve", body)
        rids = []
        for status, payload in ((status1, p1), (status2, p2)):
            if status == 202:
                rids.append(payload["request_id"])
        if len(rids) < 2:
            pytest.skip("solve resolved before the second request arrived")
        streams = [_open_sse(server, rid) for rid in rids]
        try:
            for (sock, reader, status_line, _), rid in zip(streams, rids):
                events = _read_events(reader)
                names = [name for name, _ in events]
                assert names[-1] == "done", (rid, names)
                assert events[-1][1]["request_id"] == rid
        finally:
            for sock, reader, _, _ in streams:
                sock.close()
