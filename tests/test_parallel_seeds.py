"""Tests for the chaotic-map seed generator and the alternative seeding schemes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel.seeds import ChaoticSeedSequence, sequential_seeds, spawned_seeds


class TestChaoticSeedSequence:
    def test_deterministic_for_a_key(self):
        a = ChaoticSeedSequence(key=7).seeds(50)
        b = ChaoticSeedSequence(key=7).seeds(50)
        assert a == b

    def test_different_keys_give_different_streams(self):
        a = ChaoticSeedSequence(key=1).seeds(20)
        b = ChaoticSeedSequence(key=2).seeds(20)
        assert a != b

    def test_seeds_are_distinct_and_in_range(self):
        seeds = ChaoticSeedSequence(key=3).seeds(2000)
        assert len(set(seeds)) == 2000
        assert all(0 <= s < 2**63 for s in seeds)

    def test_roughly_uniform_high_bits(self):
        # Split the 63-bit range in 8 buckets by the top 3 bits: each bucket
        # should receive a reasonable share of 4000 seeds (crude uniformity check).
        seeds = ChaoticSeedSequence(key=11).seeds(4000)
        buckets = np.bincount([s >> 60 for s in seeds], minlength=8)
        assert buckets.min() > 4000 / 8 * 0.6
        assert buckets.max() < 4000 / 8 * 1.4

    def test_iterable_interface(self):
        gen = iter(ChaoticSeedSequence(key=5))
        first = [next(gen) for _ in range(5)]
        assert len(set(first)) == 5

    def test_key_and_parameter_validation(self):
        with pytest.raises(ValueError):
            ChaoticSeedSequence(key=-1)
        with pytest.raises(ValueError):
            ChaoticSeedSequence(key=0, a=0.5)
        with pytest.raises(ValueError):
            ChaoticSeedSequence(key=0, a=1.5)
        with pytest.raises(ValueError):
            ChaoticSeedSequence(key=0).seeds(-1)

    @given(st.integers(min_value=0, max_value=10_000))
    def test_any_key_produces_usable_seeds(self, key):
        seeds = ChaoticSeedSequence(key=key).seeds(5)
        assert len(set(seeds)) == 5

    def test_endpoint_escape_reseed_mixes_the_key(self):
        """Regression: the endpoint-escape re-seed used to derive from the
        counter alone, so two sequences with *different* keys escaping at the
        same counter collapsed onto identical trajectories.  The key must be
        part of the re-seed."""
        low, high = ChaoticSeedSequence(key=1), ChaoticSeedSequence(key=2)
        # Force both trajectories onto an absorbing endpoint at equal counters.
        for seq in (low, high):
            seq._counter = 10
            seq._x = 4e-13
        assert low._step() != high._step()
        # Same key, same counter, same endpoint: still deterministic.
        a, b = ChaoticSeedSequence(key=3), ChaoticSeedSequence(key=3)
        for seq in (a, b):
            seq._counter = 10
            seq._x = 4e-13
        assert a._step() == b._step()

    def test_cross_key_trajectories_stay_decorrelated_after_escape(self):
        """After a shared escape point the *map trajectories* (not just the
        whitened seeds) of two keys must diverge: pre-fix, both re-seeded
        from the counter alone and walked identical orbits from there on."""
        a, b = ChaoticSeedSequence(key=1), ChaoticSeedSequence(key=2)
        for seq in (a, b):
            seq._counter = 42
            seq._x = 4e-13  # next _step lands on the escape branch
        trajectory_a = [a._step() for _ in range(20)]
        trajectory_b = [b._step() for _ in range(20)]
        assert not set(trajectory_a) & set(trajectory_b)

    def test_seeds_drive_decorrelated_generators(self):
        # Walk seeds must produce decorrelated streams: the first draws of 100
        # generators seeded from the sequence should not repeat suspiciously.
        seeds = ChaoticSeedSequence(key=9).seeds(100)
        draws = [np.random.default_rng(s).integers(0, 2**31) for s in seeds]
        assert len(set(draws)) > 95


class TestOtherSchemes:
    def test_sequential_seeds(self):
        assert sequential_seeds(5, base=10) == [10, 11, 12, 13, 14]
        with pytest.raises(ValueError):
            sequential_seeds(-1)

    def test_spawned_seeds_deterministic_and_distinct(self):
        a = spawned_seeds(50, root=3)
        b = spawned_seeds(50, root=3)
        assert a == b
        assert len(set(a)) == 50
        assert all(0 <= s < 2**63 for s in a)
        with pytest.raises(ValueError):
            spawned_seeds(-2)
