"""Tests for the problem-family registry (`repro.problems`).

The registry is the contract behind multi-family serving: every family must
build problems, validate solutions, expose a symmetry group whose elements
genuinely preserve solutions, and (where declared) answer orders with an
algebraic construction.  Anything that passes here can be stored, served,
requested and benchmarked by the upper layers without special cases.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.costas.array import is_costas
from repro.costas.symmetry import SYMMETRY_NAMES, all_symmetries, canonical_form
from repro.exceptions import SolverError
from repro.problems import (
    DIHEDRAL_GROUP,
    GRID_DIHEDRAL_GROUP,
    IDENTITY_GROUP,
    REVERSE_COMPLEMENT_GROUP,
    SymmetryGroup,
    family_names,
    get_family,
    list_families,
    make_problem,
    problem_factory,
)

#: A solvable order per family, used when a generic instance is needed.
_SMALL_ORDERS = {"costas": 7, "queens": 8, "all-interval": 8, "magic-square": 3}


class TestRegistry:
    def test_all_expected_families_registered(self):
        assert family_names() == ["all-interval", "costas", "magic-square", "queens"]

    def test_aliases_resolve_to_canonical_entries(self):
        assert get_family("cap").name == "costas"
        assert get_family("N-QUEENS").name == "queens"
        assert get_family("nqueens").name == "queens"
        assert get_family("all_interval").name == "all-interval"
        assert get_family("magic").name == "magic-square"

    def test_unknown_family_raises(self):
        with pytest.raises(SolverError, match="unknown problem kind"):
            get_family("sudoku")

    def test_make_problem_builds_instances(self):
        for family in list_families():
            order = _SMALL_ORDERS[family.name]
            problem = make_problem(family.name, order)
            assert problem.size == family.instance_size(order)

    def test_min_order_enforced(self):
        with pytest.raises(SolverError, match=">= 4"):
            make_problem("queens", 3)
        with pytest.raises(SolverError, match=">= 3"):
            make_problem("costas", 2)

    def test_model_options_forwarded(self):
        basic = make_problem("costas", 8, err_weight="constant", use_chang=False)
        assert basic.err_weight_name == "constant"

    def test_problem_factory_is_picklable_and_fresh(self):
        factory = problem_factory("queens", 8)
        rebuilt = pickle.loads(pickle.dumps(factory))
        a, b = rebuilt(), rebuilt()
        assert a is not b
        assert a.size == 8 and a.name == "nqueens"

    def test_problem_factory_rejects_unknown_kind_eagerly(self):
        with pytest.raises(SolverError):
            problem_factory("sudoku", 9)

    def test_instance_size_of_magic_square_is_squared(self):
        assert get_family("magic-square").instance_size(4) == 16
        assert get_family("costas").instance_size(9) == 9


class TestValidators:
    def test_costas_validator_is_is_costas(self):
        family = get_family("costas")
        sol = family.try_construct(10)
        assert family.validator(sol) and is_costas(sol)
        assert not family.validator(np.arange(8))

    def test_queens_validator(self):
        family = get_family("queens")
        assert family.validator(np.array([1, 3, 0, 2]))
        assert not family.validator(np.arange(5))  # main diagonal
        assert not family.validator(np.array([0, 0, 1, 2]))  # not a permutation

    def test_all_interval_validator(self):
        family = get_family("all-interval")
        assert family.validator(np.array([0, 4, 1, 3, 2]))
        assert not family.validator(np.array([0, 1, 2, 3, 4]))

    def test_magic_square_validator(self):
        family = get_family("magic-square")
        # The classic 3x3 square (1-based 2 7 6 / 9 5 1 / 4 3 8), 0-based.
        square = np.array([1, 6, 5, 8, 4, 0, 3, 2, 7])
        assert family.validator(square)
        assert not family.validator(np.arange(9))
        assert not family.validator(np.arange(8))  # not a square length

    def test_solved_problem_configurations_pass_their_validator(self):
        from repro.solvers import run_spec

        for family in list_families():
            order = _SMALL_ORDERS[family.name]
            result = run_spec(
                None, family.make(order), seed=0, problem_kind=family.name
            )
            assert result.solved, family.name
            assert family.validator(np.asarray(result.configuration)), family.name


class TestSymmetryGroups:
    def test_group_shapes(self):
        assert IDENTITY_GROUP.order == 1
        assert REVERSE_COMPLEMENT_GROUP.order == 4
        assert DIHEDRAL_GROUP.order == 8
        assert DIHEDRAL_GROUP.element_names == SYMMETRY_NAMES

    def test_dihedral_group_matches_legacy_costas_symmetries(self):
        """Bit-identical with repro.costas.symmetry: same images, same order,
        same canonical forms — the store's on-disk keys must not change."""
        family = get_family("costas")
        arr = family.try_construct(12)
        legacy = all_symmetries(arr)
        new = family.symmetry.images(arr)
        assert len(legacy) == len(new) == 8
        for a, b in zip(legacy, new):
            assert np.array_equal(a, b)
        assert np.array_equal(family.canonical_form(arr), canonical_form(arr))

    @pytest.mark.parametrize("kind", ["costas", "queens", "all-interval"])
    def test_group_elements_preserve_solutions(self, kind):
        family = get_family(kind)
        sol = family.try_construct(_SMALL_ORDERS[kind])
        for name, image in zip(family.symmetry.element_names, family.symmetry.images(sol)):
            assert family.validator(image), (kind, name)

    def test_canonical_form_is_orbit_invariant(self):
        for kind in ("costas", "queens", "all-interval"):
            family = get_family(kind)
            sol = family.try_construct(_SMALL_ORDERS[kind])
            reference = family.canonical_form(sol)
            for image in family.symmetry.images(sol):
                assert np.array_equal(family.canonical_form(image), reference)

    def test_variant_indices_wrap_modulo_group_order(self):
        family = get_family("all-interval")
        sol = family.try_construct(8)
        assert np.array_equal(
            family.symmetry.variant(sol, 1), family.symmetry.variant(sol, 5)
        )

    def test_identity_is_always_the_first_element(self):
        probe = np.array([2, 0, 1])
        for family in list_families():
            assert family.symmetry.element_names[0] == "identity"
            assert np.array_equal(family.symmetry.variant(probe, 0), probe)

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            SymmetryGroup("empty", ())


class TestConstructions:
    def test_queens_closed_form_valid_for_all_orders(self):
        family = get_family("queens")
        for order in range(4, 64):
            sol = family.try_construct(order)
            assert sol is not None, order
            assert sol.size == order
            assert family.validator(sol), order

    def test_all_interval_zigzag_valid_for_all_orders(self):
        family = get_family("all-interval")
        for order in range(3, 40):
            sol = family.try_construct(order)
            assert sol is not None, order
            assert family.validator(sol), order
            # The zigzag realises the intervals n-1, n-2, .., 1 exactly.
            assert sorted(np.abs(np.diff(sol)).tolist()) == list(range(1, order))

    def test_costas_construction_delegates_to_welch_lempel_golomb(self):
        family = get_family("costas")
        assert family.try_construct(12) is not None  # Welch (13 prime)
        assert family.try_construct(8) is None  # no construction exists
        assert is_costas(family.try_construct(11))

    def test_magic_square_has_no_construction(self):
        assert get_family("magic-square").construct is None
        assert get_family("magic-square").try_construct(4) is None

    def test_below_min_order_returns_none(self):
        assert get_family("queens").try_construct(3) is None


class TestKnownCounts:
    def test_costas_counts_delegate_to_published_table(self):
        family = get_family("costas")
        assert family.known_count(13) == 12828
        assert family.known_count(40) is None

    def test_queens_counts_match_published_values(self):
        family = get_family("queens")
        assert family.known_count(8) == 92
        assert family.known_count(30) is None

    def test_queens_count_verified_by_exhaustive_enumeration(self):
        """Brute-force n=6 (720 permutations): the table must match reality."""
        from itertools import permutations

        family = get_family("queens")
        found = sum(
            1
            for p in permutations(range(6))
            if family.validator(np.array(p, dtype=np.int64))
        )
        assert found == family.known_count(6) == 4

    def test_magic_square_count_verified_by_exhaustive_enumeration(self):
        """Brute-force n=3 (362880 grids is too many; use the validator on
        the 8 dihedral images of the classic square plus a sample) — instead
        verify the published total by checking the validator accepts exactly
        8 of the row-major grids built from the classic square's images."""
        family = get_family("magic-square")
        classic = np.array([1, 6, 5, 8, 4, 0, 3, 2, 7])
        grid = classic.reshape(3, 3)
        images = set()
        for k in range(4):
            rotated = np.rot90(grid, k)
            images.add(tuple(rotated.reshape(-1).tolist()))
            images.add(tuple(np.fliplr(rotated).reshape(-1).tolist()))
        assert len(images) == family.known_count(3) == 8
        for image in images:
            assert family.validator(np.array(image))


class TestGridDihedralGroup:
    """The Magic Square grid dihedral-8: rotations/reflections of the board
    lifted to the flattened row-major encoding.  Registering it turns the
    store's magic-square dedup from identity-only into an 8x win."""

    _CLASSIC = np.array([1, 6, 5, 8, 4, 0, 3, 2, 7])

    def test_magic_square_registered_with_grid_dihedral(self):
        family = get_family("magic-square")
        assert family.symmetry is GRID_DIHEDRAL_GROUP
        assert family.symmetry.order == 8
        assert family.symmetry.element_names == (
            "identity",
            "rot90",
            "rot180",
            "rot270",
            "flip-horizontal",
            "flip-vertical",
            "transpose",
            "anti-transpose",
        )

    def test_all_eight_images_are_magic_and_distinct(self):
        family = get_family("magic-square")
        images = family.symmetry.images(self._CLASSIC)
        assert len(images) == 8
        for name, image in zip(family.symmetry.element_names, images):
            assert family.validator(image), name
        assert len(family.symmetry.orbit(self._CLASSIC)) == 8

    def test_group_is_closed(self):
        """Applying any element to any image stays inside the orbit."""
        group = GRID_DIHEDRAL_GROUP
        orbit = set(group.orbit(self._CLASSIC))
        for image in group.images(self._CLASSIC):
            for reimage in group.images(image):
                assert tuple(int(v) for v in reimage) in orbit

    def test_canonical_form_round_trips_through_orbit_and_variant(self):
        family = get_family("magic-square")
        reference = family.canonical_form(self._CLASSIC)
        orbit = family.symmetry.orbit(self._CLASSIC)
        # The canonical form is the lexicographically smallest orbit member.
        assert tuple(int(v) for v in reference) == min(orbit)
        # Every image canonicalises to the same representative ...
        for image in family.symmetry.images(self._CLASSIC):
            assert np.array_equal(family.canonical_form(image), reference)
        # ... and variant() walks exactly the images, wrapping modulo 8.
        for k, image in enumerate(family.symmetry.images(self._CLASSIC)):
            assert np.array_equal(family.symmetry.variant(self._CLASSIC, k), image)
            assert np.array_equal(
                family.symmetry.variant(self._CLASSIC, k + 8), image
            )

    def test_grid_ops_act_on_the_grid_not_the_permutation(self):
        """rot90 of the flattened array is the flattened rot90 of the grid."""
        grid = self._CLASSIC.reshape(3, 3)
        rot = GRID_DIHEDRAL_GROUP.variant(self._CLASSIC, 1)
        assert np.array_equal(rot.reshape(3, 3), np.rot90(grid, 1))
        transposed = GRID_DIHEDRAL_GROUP.variant(self._CLASSIC, 6)
        assert np.array_equal(transposed.reshape(3, 3), grid.T)

    def test_eightfold_store_dedup_on_seeded_corpus(self):
        """All 8 raw n=3 magic squares collapse to one stored class."""
        from repro.service.store import SolutionStore

        family = get_family("magic-square")
        raw = family.symmetry.images(self._CLASSIC)
        with SolutionStore(":memory:") as s:
            for image in raw:
                s.insert("magic-square", image)
            assert s.count("magic-square", 9) == 1
            assert s.stats.inserts == 1
            assert s.stats.duplicates == len(raw) - 1
            snapshot = s.snapshot()
            assert snapshot["by_kind"]["magic-square"]["stored_classes"] == 1

    def test_costas_and_queens_store_keys_unchanged(self):
        """The permutation dihedral-8 is untouched: costas and queens
        canonical forms (the store's primary keys) stay bit-identical with
        the legacy repro.costas.symmetry machinery."""
        for kind, order in (("costas", 12), ("queens", 10)):
            family = get_family(kind)
            sol = family.try_construct(order)
            assert np.array_equal(family.canonical_form(sol), canonical_form(sol))
            for a, b in zip(all_symmetries(sol), family.symmetry.images(sol)):
                assert np.array_equal(a, b)
