"""Tests for the stdlib HTTP front-end (and the request/serve CLI plumbing)."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.costas.array import is_costas
from repro.service.api import ServiceConfig
from repro.service.http import ServiceHTTPServer


@pytest.fixture()
def server(tmp_path):
    srv = ServiceHTTPServer(
        ("127.0.0.1", 0),
        config=ServiceConfig(
            store_path=str(tmp_path / "http.db"), n_workers=2, default_max_time=120.0
        ),
    )
    srv.start_background()
    yield srv
    srv.stop(drain=False)


def _call(server, method, path, body=None):
    data = None if body is None else json.dumps(body).encode("utf-8")
    req = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8") or "{}")


class TestEndpoints:
    def test_healthz(self, server):
        status, payload = _call(server, "GET", "/healthz")
        assert status == 200 and payload["status"] == "ok"
        assert payload["pool"]["alive_workers"] == 2

    def test_solve_wait_constructible(self, server):
        status, payload = _call(
            server, "POST", "/solve", {"order": 12, "wait": True}
        )
        assert status == 200
        assert payload["solved"] and payload["source"] == "construction"
        assert is_costas(payload["solution"])

    def test_store_hit_on_second_request(self, server):
        _call(server, "POST", "/solve", {"order": 10, "wait": True})
        status, payload = _call(server, "POST", "/solve", {"order": 10, "wait": True})
        assert status == 200 and payload["source"] == "store"

    def test_async_submit_and_poll(self, server):
        status, payload = _call(
            server, "POST", "/solve", {"order": 9, "use_constructions": False}
        )
        # Either resolved inline (store warm) or pending.
        assert status in (200, 202)
        if status == 202:
            rid = payload["request_id"]
            deadline = time.monotonic() + 120
            while status == 202 and time.monotonic() < deadline:
                time.sleep(0.05)
                status, payload = _call(server, "GET", f"/result/{rid}")
        assert status == 200 and payload["solved"]
        assert payload["source"] in ("search", "store")

    def test_unknown_request_id_404(self, server):
        status, _ = _call(server, "GET", "/result/does-not-exist")
        assert status == 404

    def test_bad_body_400(self, server):
        status, _ = _call(server, "POST", "/solve", {"not_order": 1})
        assert status == 400
        status, _ = _call(server, "POST", "/solve", {"order": "abc"})
        assert status == 400
        status, _ = _call(server, "POST", "/solve", {"order": 2})
        assert status == 400
        # Malformed optional fields must be a clean 400, not a dropped
        # connection from an uncaught ValueError.
        status, _ = _call(server, "POST", "/solve", {"order": 12, "priority": "high"})
        assert status == 400
        status, _ = _call(server, "POST", "/solve", {"order": 12, "max_time": "fast"})
        assert status == 400

    def test_unknown_path_404(self, server):
        assert _call(server, "GET", "/nope")[0] == 404
        assert _call(server, "POST", "/nope")[0] == 404

    def test_stats_endpoint(self, server):
        _call(server, "POST", "/solve", {"order": 11, "wait": True})
        status, payload = _call(server, "GET", "/stats")
        assert status == 200
        assert {"store", "scheduler", "pool"} <= set(payload)

    def test_cancel_endpoint(self, tmp_path):
        srv = ServiceHTTPServer(
            ("127.0.0.1", 0),
            config=ServiceConfig(
                store_path=str(tmp_path / "cx.db"), n_workers=1, default_max_time=300.0
            ),
        )
        srv.start_background()
        try:
            # Park the single worker on a hard order, then cancel a queued one.
            _call(srv, "POST", "/solve", {"order": 21, "use_constructions": False})
            status, payload = _call(
                srv, "POST", "/solve", {"order": 22, "use_constructions": False}
            )
            assert status == 202
            rid = payload["request_id"]
            status, payload = _call(srv, "POST", f"/cancel/{rid}")
            assert status == 200 and payload["cancelled"]
            status, payload = _call(srv, "GET", f"/result/{rid}")
            assert status == 409 and payload["status"] == "cancelled"
            # Cancelling an already-settled request is a 409; an id the
            # service never saw is a 404 — the two conditions are distinct.
            assert _call(srv, "POST", f"/cancel/{rid}")[0] == 409
            assert _call(srv, "POST", "/cancel/ghost")[0] == 404
        finally:
            srv.stop(drain=False)

    def test_backpressure_returns_503(self, tmp_path):
        srv = ServiceHTTPServer(
            ("127.0.0.1", 0),
            config=ServiceConfig(
                store_path=str(tmp_path / "bp.db"),
                n_workers=1,
                max_queue_depth=1,
                default_max_time=300.0,
            ),
        )
        srv.start_background()
        try:
            _call(srv, "POST", "/solve", {"order": 23, "use_constructions": False})
            time.sleep(0.3)  # first job moves to RUNNING, freeing the queue slot
            _call(srv, "POST", "/solve", {"order": 24, "use_constructions": False})
            status, payload = _call(
                srv, "POST", "/solve", {"order": 25, "use_constructions": False}
            )
            assert status == 503 and payload.get("retry") is True
        finally:
            srv.stop(drain=False)


class TestCoalescedBurstOverHTTP:
    def test_burst_of_identical_requests_shares_one_solve(self, server):
        """The CI smoke scenario: a concurrent burst coalesces to one solve
        and the second burst is answered from the store."""
        results = []
        lock = threading.Lock()

        def client():
            status, payload = _call(
                server,
                "POST",
                "/solve",
                {"order": 14, "use_constructions": False, "wait": True},
            )
            with lock:
                results.append((status, payload))

        threads = [threading.Thread(target=client) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert len(results) == 6
        assert all(status == 200 and payload["solved"] for status, payload in results)
        assert server.service.pool.stats()["jobs_done"] <= 2  # burst coalesced
        # Second burst: all store hits, zero new solves.
        before = server.service.pool.stats()["jobs_done"]
        for _ in range(4):
            status, payload = _call(
                server, "POST", "/solve", {"order": 14, "use_constructions": False, "wait": True}
            )
            assert status == 200 and payload["source"] == "store"
        assert server.service.pool.stats()["jobs_done"] == before
