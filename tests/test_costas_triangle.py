"""Tests for the incrementally-maintained DifferenceTriangle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.costas.array import is_costas, violation_count
from repro.costas.triangle import (
    DifferenceTriangle,
    err_weight_constant,
    err_weight_quadratic,
)

perm_and_swaps = st.integers(min_value=3, max_value=10).flatmap(
    lambda n: st.tuples(
        st.permutations(list(range(n))),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=1,
            max_size=15,
        ),
    )
)


class TestWeights:
    def test_constant_weights(self):
        assert list(err_weight_constant(5)) == [1, 1, 1, 1, 1]

    def test_quadratic_weights(self):
        w = err_weight_quadratic(5)
        assert list(w) == [25, 24, 21, 16, 9]


class TestConstruction:
    def test_cost_zero_for_costas(self, example_costas_5):
        tri = DifferenceTriangle(example_costas_5)
        assert tri.cost == 0
        assert tri.is_solution()
        assert tri.duplicate_count == 0

    def test_cost_counts_duplicates_unweighted(self):
        perm = list(range(6))
        tri = DifferenceTriangle(perm)
        assert tri.cost == violation_count(perm)

    def test_cost_weighted(self):
        perm = list(range(5))
        tri = DifferenceTriangle(perm, err_weight=err_weight_quadratic)
        expected = 0
        n = 5
        for d in range(1, n):
            expected += (n * n - d * d) * ((n - d) - 1)
        assert tri.cost == expected

    def test_max_distance_restriction(self):
        perm = list(range(8))
        full = DifferenceTriangle(perm)
        half = DifferenceTriangle(perm, max_distance=(8 - 1) // 2)
        assert half.cost <= full.cost
        assert half.max_distance == 3

    def test_invalid_max_distance(self):
        with pytest.raises(ValueError):
            DifferenceTriangle([0, 1, 2], max_distance=5)

    def test_invalid_weights_length(self):
        with pytest.raises(ValueError):
            DifferenceTriangle([0, 1, 2, 3], err_weight=[1, 2])

    def test_row_values(self, example_costas_5):
        tri = DifferenceTriangle(example_costas_5)
        assert list(tri.row_values(1)) == [1, -2, -1, 4]
        with pytest.raises(ValueError):
            tri.row_values(0)

    def test_row_duplicates_bounds(self):
        tri = DifferenceTriangle([0, 1, 2, 3], max_distance=2)
        with pytest.raises(ValueError):
            tri.row_duplicates(3)
        assert tri.row_duplicates(1) == 2


class TestIncrementalUpdates:
    @given(perm_and_swaps)
    def test_swap_matches_recompute(self, data):
        perm, swaps = data
        tri = DifferenceTriangle(perm, err_weight=err_weight_quadratic)
        for i, j in swaps:
            tri.swap(i, j)
            incremental = tri.cost
            assert incremental == tri.recompute()

    @given(perm_and_swaps)
    def test_swap_delta_is_side_effect_free(self, data):
        perm, swaps = data
        tri = DifferenceTriangle(perm)
        for i, j in swaps:
            before_perm = list(tri.permutation)
            before_cost = tri.cost
            delta = tri.swap_delta(i, j)
            assert list(tri.permutation) == before_perm
            assert tri.cost == before_cost
            # Applying the swap must realise exactly that delta.
            tri.swap(i, j)
            assert tri.cost == before_cost + delta
            tri.swap(i, j)

    def test_swap_same_index_is_noop(self):
        tri = DifferenceTriangle([0, 2, 1, 3])
        cost = tri.cost
        assert tri.swap(2, 2) == cost

    def test_swap_out_of_range(self):
        tri = DifferenceTriangle([0, 2, 1, 3])
        with pytest.raises(ValueError):
            tri.swap(0, 7)

    def test_cost_if_swapped(self):
        tri = DifferenceTriangle([0, 1, 2, 3, 4])
        expected = tri.cost + tri.swap_delta(0, 4)
        assert tri.cost_if_swapped(0, 4) == expected

    def test_set_permutation_rebuilds(self, example_costas_5):
        tri = DifferenceTriangle([0, 1, 2, 3, 4])
        assert tri.cost > 0
        tri.set_permutation(example_costas_5)
        assert tri.cost == 0

    def test_set_permutation_wrong_size(self):
        tri = DifferenceTriangle([0, 1, 2, 3])
        with pytest.raises(ValueError):
            tri.set_permutation([0, 1, 2])


class TestVariableErrors:
    @given(st.integers(min_value=4, max_value=9).flatmap(lambda n: st.permutations(list(range(n)))))
    def test_errors_zero_iff_solution(self, perm):
        tri = DifferenceTriangle(perm)
        errors = tri.variable_errors()
        if tri.cost == 0:
            assert not errors.any()
        else:
            assert errors.sum() > 0

    def test_error_assigned_to_both_columns(self):
        # Row 1 of [0,1,2] has differences [1, 1]: the second cell (columns 1 and 2)
        # repeats the first, so columns 1 and 2 get the error, column 0 does not.
        tri = DifferenceTriangle([0, 1, 2], max_distance=1)
        errors = tri.variable_errors()
        assert list(errors) == [0, 1, 1]

    def test_max_error_variable_respects_tabu(self, rng):
        tri = DifferenceTriangle([0, 1, 2], max_distance=1)
        tabu = np.array([False, True, False])
        assert tri.max_error_variable(rng, tabu) == 2

    def test_max_error_variable_ignores_all_tabu(self, rng):
        tri = DifferenceTriangle([0, 1, 2], max_distance=1)
        tabu = np.array([True, True, True])
        assert tri.max_error_variable(rng, tabu) in (1, 2)


class TestChangEquivalence:
    @given(st.integers(min_value=4, max_value=9).flatmap(lambda n: st.permutations(list(range(n)))))
    def test_half_triangle_zero_cost_iff_costas(self, perm):
        n = len(perm)
        tri = DifferenceTriangle(perm, max_distance=(n - 1) // 2)
        assert (tri.cost == 0) == is_costas(perm)
