"""Tests for the finite-field substrate used by the algebraic constructions."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.costas.galois import (
    GaloisField,
    factorize,
    is_prime,
    is_prime_power,
    prime_factors,
    primitive_root,
)


class TestIntegerHelpers:
    def test_is_prime_small_values(self):
        primes = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31]
        for n in range(2, 32):
            assert is_prime(n) == (n in primes)

    def test_is_prime_edge_cases(self):
        assert not is_prime(0)
        assert not is_prime(1)
        assert not is_prime(-7)

    @given(st.integers(min_value=2, max_value=5000))
    def test_factorize_reconstructs(self, n):
        factors = factorize(n)
        product = 1
        for p, e in factors.items():
            assert is_prime(p)
            product *= p**e
        assert product == n

    def test_factorize_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            factorize(0)

    def test_prime_factors_sorted_unique(self):
        assert prime_factors(360) == [2, 3, 5]

    def test_is_prime_power(self):
        assert is_prime_power(8) == (True, 2, 3)
        assert is_prime_power(27) == (True, 3, 3)
        assert is_prime_power(11) == (True, 11, 1)
        assert is_prime_power(12)[0] is False
        assert is_prime_power(1)[0] is False

    def test_primitive_root_generates_group(self):
        for p in (3, 5, 7, 11, 13, 17, 19, 23):
            g = primitive_root(p)
            powers = {pow(g, k, p) for k in range(1, p)}
            assert powers == set(range(1, p))

    def test_primitive_root_requires_prime(self):
        with pytest.raises(ValueError):
            primitive_root(8)


@pytest.mark.parametrize("q", [2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27])
class TestGaloisFieldAxioms:
    def test_field_size_and_elements(self, q):
        field = GaloisField.of_order(q)
        assert field.q == q
        assert len(list(field.elements())) == q

    def test_additive_structure(self, q):
        field = GaloisField.of_order(q)
        for a in field.elements():
            assert field.add(a, 0) == a
            assert field.add(a, field.neg(a)) == 0
            assert field.sub(a, a) == 0

    def test_multiplicative_structure(self, q):
        field = GaloisField.of_order(q)
        for a in field.elements():
            assert field.mul(a, 1) == a
            assert field.mul(a, 0) == 0
            if a != 0:
                assert field.mul(a, field.inverse(a)) == 1

    def test_generator_is_primitive(self, q):
        field = GaloisField.of_order(q)
        if q > 2:
            assert field.is_primitive(field.generator)
            assert field.element_order(field.generator) == q - 1

    def test_exp_log_roundtrip(self, q):
        field = GaloisField.of_order(q)
        for e in range(q - 1):
            a = field.exp(e)
            assert field.log(a) == e

    def test_powers_cover_nonzero_elements(self, q):
        field = GaloisField.of_order(q)
        powers = {field.exp(e) for e in range(q - 1)}
        assert powers == set(range(1, q))


class TestGaloisFieldProperties:
    @given(
        st.sampled_from([5, 7, 8, 9, 11, 16]),
        st.data(),
    )
    def test_distributivity(self, q, data):
        field = GaloisField.of_order(q)
        a = data.draw(st.integers(min_value=0, max_value=q - 1))
        b = data.draw(st.integers(min_value=0, max_value=q - 1))
        c = data.draw(st.integers(min_value=0, max_value=q - 1))
        assert field.mul(a, field.add(b, c)) == field.add(field.mul(a, b), field.mul(a, c))

    @given(st.sampled_from([5, 7, 9, 16]), st.data())
    def test_mul_commutative_associative(self, q, data):
        field = GaloisField.of_order(q)
        a = data.draw(st.integers(min_value=0, max_value=q - 1))
        b = data.draw(st.integers(min_value=0, max_value=q - 1))
        c = data.draw(st.integers(min_value=0, max_value=q - 1))
        assert field.mul(a, b) == field.mul(b, a)
        assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))

    def test_power_negative_exponent(self):
        field = GaloisField.of_order(7)
        assert field.power(3, -1) == field.inverse(3)

    def test_zero_division_errors(self):
        field = GaloisField.of_order(5)
        with pytest.raises(ZeroDivisionError):
            field.inverse(0)
        with pytest.raises(ZeroDivisionError):
            field.log(0)
        with pytest.raises(ZeroDivisionError):
            field.element_order(0)

    def test_out_of_range_element(self):
        field = GaloisField.of_order(5)
        with pytest.raises(ValueError):
            field.add(5, 0)

    def test_invalid_characteristic(self):
        with pytest.raises(ValueError):
            GaloisField(4)
        with pytest.raises(ValueError):
            GaloisField.of_order(12)

    def test_primitive_elements_count(self):
        # GF(q) has euler_phi(q-1) primitive elements; for q = 9 phi(8) = 4.
        field = GaloisField.of_order(9)
        assert len(field.primitive_elements()) == 4

    def test_log_with_alternate_base(self):
        field = GaloisField.of_order(11)
        primitives = field.primitive_elements()
        base = primitives[-1]
        for a in range(1, 11):
            e = field.log(a, base)
            assert field.power(base, e) == a
