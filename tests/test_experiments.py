"""Integration tests: every experiment driver runs end-to-end at smoke scale.

These are the tests that tie the library to the paper: each driver must
produce rows with the expected structure, and the qualitative claims the paper
makes (costs grow with the order, parallel time shrinks with the core count,
speed-ups are close to ideal, the runtime distribution looks exponential) must
hold on the reproduction's own data even at smoke scale.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentScale
from repro.experiments.ablations import ABLATIONS, run_ablation
from repro.experiments.registry import (
    EXPERIMENTS,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.parallel.runner import ExperimentRunner


@pytest.fixture(scope="module")
def scale() -> ExperimentScale:
    return ExperimentScale.smoke()


@pytest.fixture(scope="module")
def runner() -> ExperimentRunner:
    # One shared runner so pools collected by one experiment are reused by the others.
    return ExperimentRunner()


class TestScalePresets:
    def test_by_name(self):
        assert ExperimentScale.by_name("smoke").name == "smoke"
        assert ExperimentScale.by_name("default").name == "default"
        assert ExperimentScale.by_name("paper").table1_orders[-1] == 20
        with pytest.raises(ValueError):
            ExperimentScale.by_name("gigantic")

    def test_registry_contents(self):
        identifiers = list_experiments()
        for expected in ("table1", "table2", "table3", "table4", "table5",
                         "figure2", "figure3", "figure4", "cp"):
            assert expected in identifiers
        assert all(f"ablation-{name}" in identifiers for name in ABLATIONS)
        with pytest.raises(KeyError):
            get_experiment("table99")


class TestSequentialExperiments:
    def test_table1(self, scale, runner):
        result = run_experiment("table1", scale, runner)
        assert result.experiment == "table1"
        assert len(result.rows) == len(scale.table1_orders)
        for row in result.rows:
            assert row["solved"] > 0
            assert row["time_min"] <= row["time_avg"] <= row["time_max"]
            assert row["iterations_min"] <= row["iterations_avg"] <= row["iterations_max"]
            assert row["ratio_avg_over_min"] >= 1.0
        # Average iterations grow with the order (exponential behaviour claim).
        iters = [row["iterations_avg"] for row in result.rows]
        assert iters == sorted(iters)
        assert "Table I" in result.format()

    def test_table2(self, scale, runner):
        result = run_experiment("table2", scale, runner)
        assert len(result.rows) == len(scale.table2_orders)
        for row in result.rows:
            assert row["as_solved"] > 0
            assert row["ds_solved"] >= 0
            if row["ds_avg_time"] is not None and row["as_avg_time"]:
                assert row["ds_over_as"] > 0
        assert "Dialectic" in result.format()

    def test_cp_comparison(self, scale, runner):
        result = run_experiment("cp", scale, runner)
        assert len(result.rows) == len(scale.cp_orders)
        for row in result.rows:
            assert row["cp_avg_nodes"] is None or row["cp_avg_nodes"] > 0


class TestParallelExperiments:
    def test_table3_cells_decrease_with_cores(self, scale, runner):
        result = run_experiment("table3", scale, runner)
        stats = result.metadata["statistics"]
        for order in scale.table3_orders:
            times = [stats[order][str(c)]["avg"] for c in scale.table3_cores]
            # Parallel columns must not be slower than the sequential column.
            assert times[-1] <= times[0]
            # And the largest core count should be the (weakly) fastest parallel cell.
            assert times[-1] == min(times)
        assert result.metadata["machine"] == "HA8000"

    def test_table4_jugene(self, scale, runner):
        result = run_experiment("table4", scale, runner)
        assert result.metadata["machine"] == "JUGENE"
        stats = result.metadata["statistics"]
        for order in scale.table4_orders:
            times = [stats[order][str(c)]["avg"] for c in scale.table4_cores]
            # Adding cores must not make things noticeably worse (saturation
            # regime tolerance; see EXPERIMENTS.md).
            assert times[-1] <= times[0] * 1.2

    def test_table5_has_both_clusters(self, scale, runner):
        result = run_experiment("table5", scale, runner)
        machines = {row["machine"] for row in result.rows}
        assert machines == {"Suno", "Helios"}

    def test_figure2_speedups(self, scale, runner):
        result = run_experiment("figure2", scale, runner)
        assert result.rows, "expected at least one speed-up point"
        for row in result.rows:
            assert row["speedup"] > 0
            assert row["ideal"] >= 1.0
        # For each machine, speed-up grows with the core count.
        by_machine = {}
        for row in result.rows:
            by_machine.setdefault(row["machine"], []).append((row["cores"], row["speedup"]))
        for series in by_machine.values():
            series.sort()
            speedups = [s for _, s in series]
            assert speedups[-1] >= speedups[0]

    def test_figure3_near_linear(self, scale, runner):
        result = run_experiment("figure3", scale, runner)
        for row in result.rows:
            assert 0 < row["speedup"] <= row["ideal"] * 1.5
        largest = [r for r in result.rows if r["cores"] == max(scale.figure3_cores)]
        # At smoke scale (tiny instances) saturation is expected; the speed-up
        # at the largest core count must at least not degrade.
        assert all(r["speedup"] > 0.85 for r in largest)

    def test_figure4_distribution_looks_exponential(self, scale, runner):
        result = run_experiment("figure4", scale, runner)
        assert len(result.rows) == len(scale.figure4_cores)
        for row in result.rows:
            assert len(row["cdf_times"]) == row["samples"]
            assert row["fit_scale"] > 0
            assert 0 <= row["ks_distance"] <= 1
            assert 0 <= row["prob_within_reference_time"] <= 1
        # More cores -> higher probability of reaching the target within the
        # reference time (the paper's 50% / 75% / 95% / 100% reading).
        probs = [row["prob_within_reference_time"] for row in result.rows]
        assert probs[-1] >= probs[0]


class TestAblations:
    def test_ablation_rows_structure(self, scale, runner):
        result = run_ablation("err_weight", scale, runner)
        assert result.rows
        labels = {row["variant"] for row in result.rows}
        assert labels == {"err=constant", "err=quadratic"}
        for row in result.rows:
            assert row["solved"] > 0

    def test_unknown_ablation_rejected(self, scale):
        with pytest.raises(ValueError):
            run_ablation("nonexistent", scale)

    def test_registry_driver_for_ablation(self, scale, runner):
        result = run_experiment("ablation-reset", scale, runner)
        labels = {row["variant"] for row in result.rows}
        assert labels == {"generic-reset", "dedicated-reset"}
