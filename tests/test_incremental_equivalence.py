"""Bit-exact equivalence of the incremental and reference evaluation paths.

The incremental count-table subsystem (``repro.core.incremental``, the
rewritten :class:`~repro.models.costas.CostasProblem`, and its optional C
kernels) must be indistinguishable — bit for bit — from the full-recompute
:class:`~repro.models.costas.ReferenceCostasProblem` across every ablation
flag: same costs, same error vectors, same swap deltas, same dedicated-reset
candidates and choices, and therefore identical engine trajectories for any
seed.  These property tests are the contract that lets the engine run the
fast path everywhere else.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import _ckernels
from repro.core.engine import AdaptiveSearch
from repro.core.incremental import dup_count, dup_delta_from_net, grouped_dup_delta
from repro.core.params import ASParameters
from repro.models.costas import CostasProblem, ReferenceCostasProblem
from repro.models.queens import NQueensProblem

#: Every ablation-flag combination of the Costas model.
FLAG_COMBOS = [
    dict(err_weight=err, use_chang=chang, dedicated_reset=reset)
    for err, chang, reset in itertools.product(
        ("quadratic", "constant"), (True, False), (True, False)
    )
]

#: Incremental variants under test: the NumPy path always, the C path when a
#: toolchain is available (they share everything but the kernel dispatch).
VARIANTS = [False] + ([True] if _ckernels.available() else [])


def make_pair(n, flags, use_ckernels):
    return (
        CostasProblem(n, use_ckernels=use_ckernels, **flags),
        ReferenceCostasProblem(n, **flags),
    )


perm_strategy = st.integers(min_value=4, max_value=12).flatmap(
    lambda n: st.permutations(list(range(n)))
)


class TestStaticEquivalence:
    @pytest.mark.parametrize("flags", FLAG_COMBOS, ids=str)
    @pytest.mark.parametrize("use_ckernels", VARIANTS)
    @given(perm=perm_strategy)
    @settings(max_examples=25, deadline=None)
    def test_cost_errors_and_all_deltas_match(self, flags, use_ckernels, perm):
        inc, ref = make_pair(len(perm), flags, use_ckernels)
        inc.set_configuration(perm)
        ref.set_configuration(perm)
        assert inc.cost() == ref.cost()
        assert np.array_equal(inc.variable_errors(), ref.variable_errors())
        for i in range(len(perm)):
            assert np.array_equal(inc.swap_deltas(i), ref.swap_deltas(i)), (
                flags,
                perm,
                i,
            )
            for j in range(len(perm)):
                assert inc.swap_delta(i, j) == ref.swap_delta(i, j)

    @pytest.mark.parametrize("use_ckernels", VARIANTS)
    @given(perm=perm_strategy, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_applied_swap_walks_stay_identical(self, use_ckernels, perm, data):
        n = len(perm)
        flags = data.draw(st.sampled_from(FLAG_COMBOS))
        inc, ref = make_pair(n, flags, use_ckernels)
        inc.set_configuration(perm)
        ref.set_configuration(perm)
        for _ in range(8):
            i = data.draw(st.integers(0, n - 1))
            j = data.draw(st.integers(0, n - 1))
            # Engine calling convention: score first, then apply with the
            # already-computed delta.
            deltas = inc.swap_deltas(i)
            delta = int(deltas[j]) if j != i else None
            assert inc.apply_swap(i, j, delta=delta) == ref.apply_swap(i, j)
        inc.check_consistency()
        ref.check_consistency()
        assert np.array_equal(inc.configuration(), ref.configuration())
        assert np.array_equal(inc.variable_errors(), ref.variable_errors())

    @pytest.mark.parametrize("use_ckernels", VARIANTS)
    @given(perm=perm_strategy, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_dedicated_reset_same_candidates_and_choice(
        self, use_ckernels, perm, seed
    ):
        inc, ref = make_pair(len(perm), dict(dedicated_reset=True), use_ckernels)
        inc.set_configuration(perm)
        ref.set_configuration(perm)
        inc_cands = inc.reset_candidates(np.random.default_rng(seed))
        ref_cands = ref.reset_candidates(np.random.default_rng(seed))
        assert len(inc_cands) == len(ref_cands)
        for a, b in zip(inc_cands, ref_cands):
            assert np.array_equal(a, b)
        chosen_inc = inc.custom_reset(np.random.default_rng(seed))
        chosen_ref = ref.custom_reset(np.random.default_rng(seed))
        assert np.array_equal(chosen_inc, chosen_ref)


class TestTrajectoryEquivalence:
    """Same engine + same seed must walk both paths through identical states."""

    @pytest.mark.parametrize("flags", FLAG_COMBOS, ids=str)
    @pytest.mark.parametrize("use_ckernels", VARIANTS)
    def test_full_solves_identical(self, flags, use_ckernels):
        n = 9
        params = ASParameters.for_costas(n, max_iterations=3000)
        inc, ref = make_pair(n, flags, use_ckernels)
        a = AdaptiveSearch().solve(inc, seed=12, params=params)
        b = AdaptiveSearch().solve(ref, seed=12, params=params)
        assert a.iterations == b.iterations
        assert a.cost == b.cost
        assert a.solved == b.solved
        assert np.array_equal(a.configuration, b.configuration)
        assert (a.local_minima, a.plateau_moves, a.resets, a.swaps) == (
            b.local_minima,
            b.plateau_moves,
            b.resets,
            b.swaps,
        )

    @pytest.mark.skipif(len(VARIANTS) < 2, reason="C kernels unavailable")
    def test_numpy_and_c_paths_identical(self):
        n = 11
        params = ASParameters.for_costas(n, max_iterations=2000)
        a = AdaptiveSearch().solve(
            CostasProblem(n, use_ckernels=True), seed=3, params=params
        )
        b = AdaptiveSearch().solve(
            CostasProblem(n, use_ckernels=False), seed=3, params=params
        )
        assert a.iterations == b.iterations
        assert np.array_equal(a.configuration, b.configuration)


class TestIncrementalApiSurface:
    def test_incremental_flags(self):
        assert CostasProblem(8).incremental
        assert not ReferenceCostasProblem(8).incremental
        assert NQueensProblem(8).incremental

    def test_trusted_load_matches_validated_load(self):
        rng = np.random.default_rng(0)
        perm = rng.permutation(10)
        a = CostasProblem(10)
        b = CostasProblem(10)
        a.set_configuration(perm)
        b.load_trusted_configuration(np.asarray(perm, dtype=np.int64))
        assert a.cost() == b.cost()
        assert np.array_equal(a.variable_errors(), b.variable_errors())
        b.check_consistency()

    def test_apply_swap_accepts_and_uses_delta(self):
        prob = CostasProblem(9, use_ckernels=False)
        prob.set_configuration(np.random.default_rng(1).permutation(9))
        before = prob.cost()
        delta = prob.swap_delta(2, 7)
        after = prob.apply_swap(2, 7, delta=delta)
        assert after == before + delta
        prob.check_consistency()

    def test_invalidate_caches_recovers_external_mutation(self):
        prob = CostasProblem(8)
        prob.set_configuration(np.random.default_rng(2).permutation(8))
        # Mutate behind the model's back, then invoke the dirty-state hook.
        prob._perm[[0, 5]] = prob._perm[[5, 0]]
        prob.invalidate_caches()
        prob.check_consistency()

    def test_explicit_ckernels_request_errors_when_disabled(self, monkeypatch):
        monkeypatch.setattr(_ckernels, "_lib", None)
        monkeypatch.setattr(_ckernels, "_loaded", True)
        from repro.exceptions import ModelError

        with pytest.raises(ModelError):
            CostasProblem(8, use_ckernels=True)
        # Auto mode silently falls back.
        assert CostasProblem(8)._lib is None


class TestQueensIncremental:
    @given(
        n=st.integers(min_value=4, max_value=14),
        seed=st.integers(0, 2**31 - 1),
        i=st.integers(0, 13),
    )
    @settings(max_examples=60, deadline=None)
    def test_swap_deltas_match_bruteforce(self, n, seed, i):
        i = i % n
        prob = NQueensProblem(n)
        prob.set_configuration(np.random.default_rng(seed).permutation(n))
        deltas = prob.swap_deltas(i)
        for j in range(n):
            if j == i:
                assert deltas[j] == np.iinfo(np.int64).max
            else:
                assert deltas[j] == prob.swap_delta(i, j), (n, seed, i, j)

    def test_errors_cache_invalidated_by_swap(self):
        prob = NQueensProblem(8)
        prob.set_configuration(np.random.default_rng(3).permutation(8))
        before = prob.variable_errors()
        prob.apply_swap(0, 4)
        after = prob.variable_errors()
        prob.check_consistency()
        # The cache must not leak the pre-swap vector.
        recomputed = NQueensProblem(8)
        recomputed.set_configuration(prob.configuration())
        assert np.array_equal(after, recomputed.variable_errors())
        assert before.shape == after.shape


class TestIncrementalPrimitives:
    def test_dup_count(self):
        counts = np.array([[0, 1, 3], [2, 2, 0]])
        assert dup_count(counts) == 2 + 1 + 1
        assert list(dup_count(counts, axis=1)) == [2, 2]

    def test_dup_delta_from_net_matches_definition(self):
        rng = np.random.default_rng(0)
        c = rng.integers(0, 5, size=200)
        m = rng.integers(-3, 4, size=200)
        m = np.maximum(m, -c)  # counts can never go negative
        expected = np.maximum(c + m - 1, 0) - np.maximum(c - 1, 0)
        assert np.array_equal(dup_delta_from_net(c, m), expected)

    def test_grouped_dup_delta_handles_collisions(self):
        # Two removes and one add of the same value, count 3:
        # 3 -> 1 occupants, dups 2 -> 0.
        values = np.array([[5, 5, 5, 9]])
        signs = np.array([[-1, -1, 1, -1]])
        counts = np.array([[3, 3, 3, 1]])
        assert grouped_dup_delta(values, signs, counts)[0] == (-1) + (-0)

    def test_grouped_dup_delta_padding_events_are_inert(self):
        values = np.array([[4, 4, 4, 4]])
        signs = np.array([[0, 0, 0, 0]])
        counts = np.array([[7, 7, 7, 7]])
        assert grouped_dup_delta(values, signs, counts)[0] == 0
