"""Tests for exhaustive Costas array enumeration and the published-count database."""

from __future__ import annotations

import pytest

from repro.costas.array import is_costas
from repro.costas.database import (
    KNOWN_COSTAS_COUNTS,
    KNOWN_EQUIVALENCE_CLASS_COUNTS,
    known_class_count,
    known_count,
    solution_density,
)
from repro.costas.enumeration import (
    EnumerationStats,
    count_costas_arrays,
    count_equivalence_classes,
    enumerate_costas_arrays,
    equivalence_classes,
)


class TestEnumeration:
    @pytest.mark.parametrize("order", [1, 2, 3, 4, 5, 6, 7])
    def test_counts_match_published_values(self, order):
        assert count_costas_arrays(order) == KNOWN_COSTAS_COUNTS[order]

    def test_count_order_8_matches(self):
        assert count_costas_arrays(8) == KNOWN_COSTAS_COUNTS[8]

    def test_every_enumerated_array_is_costas(self):
        for array in enumerate_costas_arrays(6):
            assert is_costas(array.to_array())

    def test_enumeration_is_lexicographic_and_duplicate_free(self):
        arrays = [a.permutation for a in enumerate_costas_arrays(6)]
        assert arrays == sorted(arrays)
        assert len(set(arrays)) == len(arrays)

    def test_limit_stops_early(self):
        stats = EnumerationStats()
        arrays = list(enumerate_costas_arrays(7, limit=5, stats=stats))
        assert len(arrays) == 5
        assert stats.solutions >= 5

    def test_prefix_restricts_enumeration(self):
        all_arrays = list(enumerate_costas_arrays(6))
        with_prefix = list(enumerate_costas_arrays(6, prefix=[0]))
        expected = [a for a in all_arrays if a.permutation[0] == 0]
        assert [a.permutation for a in with_prefix] == [a.permutation for a in expected]

    def test_invalid_prefix_yields_nothing(self):
        assert list(enumerate_costas_arrays(6, prefix=[0, 0])) == []
        assert list(enumerate_costas_arrays(6, prefix=[7])) == []

    def test_conflicting_prefix_yields_nothing(self):
        # [0, 1, 2] repeats the difference +1 at distance 1: no completion exists.
        assert list(enumerate_costas_arrays(6, prefix=[0, 1, 2])) == []

    def test_stats_are_populated(self):
        stats = EnumerationStats()
        count_costas_arrays(5, stats=stats)
        assert stats.solutions == KNOWN_COSTAS_COUNTS[5]
        assert stats.nodes > stats.solutions
        assert stats.prunings > 0
        assert set(stats.as_dict()) == {"nodes", "prunings", "solutions"}

    def test_rejects_nonpositive_order(self):
        with pytest.raises(ValueError):
            list(enumerate_costas_arrays(0))


class TestEquivalenceClasses:
    @pytest.mark.parametrize("order", [1, 2, 3, 4, 5, 6])
    def test_class_counts_match_published_values(self, order):
        assert count_equivalence_classes(order) == KNOWN_EQUIVALENCE_CLASS_COUNTS[order]

    def test_classes_partition_the_arrays(self):
        arrays = list(enumerate_costas_arrays(5))
        classes = equivalence_classes(arrays)
        assert sum(len(members) for members in classes.values()) == len(arrays)
        # Every member canonicalises to its class key.
        for key, members in classes.items():
            for member in members:
                assert tuple(member.canonical().permutation) == key


class TestDatabase:
    def test_known_count_lookup(self):
        assert known_count(29) == 164
        assert known_count(64) is None

    def test_known_class_count_lookup(self):
        assert known_class_count(29) == 23
        assert known_class_count(64) is None

    def test_paper_quoted_values(self):
        # Section II: 164 Costas arrays of order 29, 23 up to symmetry.
        assert KNOWN_COSTAS_COUNTS[29] == 164
        assert KNOWN_EQUIVALENCE_CLASS_COUNTS[29] == 23

    def test_solution_density_decreases_sharply(self):
        d10 = solution_density(10)
        d20 = solution_density(20)
        assert d10 is not None and d20 is not None
        assert d20 < d10 / 1e6
        assert solution_density(50) is None

    def test_class_orbit_bound(self):
        # Each equivalence class has at most 8 members, so counts are consistent.
        for order, total in KNOWN_COSTAS_COUNTS.items():
            classes = KNOWN_EQUIVALENCE_CLASS_COUNTS[order]
            assert classes <= total <= 8 * classes
