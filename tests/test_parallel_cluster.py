"""Tests for machine models and the virtual-cluster performance simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ASParameters
from repro.exceptions import AnalysisError, ParallelExecutionError
from repro.models import CostasProblem
from repro.parallel.cluster import (
    HA8000,
    HELIOS,
    JUGENE,
    LOCAL_HOST,
    SUNO,
    MachineModel,
    VirtualCluster,
    WalkSample,
)


def make_pool(rng: np.random.Generator, size: int = 200) -> list[WalkSample]:
    iterations = rng.exponential(500.0, size).astype(int) + 5
    return [WalkSample(iterations=int(it), solved=True) for it in iterations]


class TestMachineModels:
    def test_paper_machines_have_expected_relative_speeds(self):
        assert JUGENE.speed_factor < HELIOS.speed_factor <= HA8000.speed_factor < 1.01
        assert SUNO.speed_factor > JUGENE.speed_factor
        assert LOCAL_HOST.speed_factor == 1.0

    def test_scaled_factory(self):
        scaled = JUGENE.scaled(reference_clock_ghz=1.7)
        assert scaled.speed_factor == pytest.approx(0.85 / 1.7)
        with pytest.raises(ValueError):
            JUGENE.scaled(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineModel("bad", cores_per_node=1, clock_ghz=1.0, speed_factor=0.0)
        with pytest.raises(ValueError):
            MachineModel("bad", cores_per_node=0, clock_ghz=1.0)


class TestVirtualCluster:
    def test_seconds_conversion_uses_speed_factor(self):
        fast = VirtualCluster(LOCAL_HOST, host_iteration_rate=1000.0)
        slow = VirtualCluster(JUGENE, host_iteration_rate=1000.0)
        assert fast.seconds(1000) == pytest.approx(1.0)
        assert slow.seconds(1000) == pytest.approx(1.0 / JUGENE.speed_factor)

    def test_validation(self):
        with pytest.raises(ParallelExecutionError):
            VirtualCluster(HA8000, host_iteration_rate=0.0)
        with pytest.raises(ParallelExecutionError):
            VirtualCluster(HA8000, host_iteration_rate=10.0, check_period=0)

    def test_core_limits_enforced(self, rng):
        cluster = VirtualCluster(HELIOS, host_iteration_rate=1000.0)
        pool = make_pool(rng)
        with pytest.raises(ParallelExecutionError):
            cluster.simulate_run(pool, HELIOS.max_cores + 1, rng)
        with pytest.raises(ParallelExecutionError):
            cluster.simulate_run(pool, 0, rng)

    def test_bootstrap_run_statistics(self, rng):
        cluster = VirtualCluster(HA8000, host_iteration_rate=1000.0, check_period=10)
        pool = make_pool(rng)
        estimate = cluster.simulate_run(pool, 64, rng)
        assert estimate.solved
        assert estimate.cores == 64
        assert estimate.machine == "HA8000"
        assert estimate.winning_iterations >= 1
        assert estimate.total_iterations >= estimate.winning_iterations
        # Total work is bounded by cores x (winner + one polling period).
        assert estimate.total_iterations <= 64 * (estimate.winning_iterations + 10)

    def test_more_cores_reduce_expected_time(self, rng):
        cluster = VirtualCluster(HA8000, host_iteration_rate=1000.0)
        pool = make_pool(rng)
        few = cluster.simulate_many(pool, 4, 200, rng)
        many = cluster.simulate_many(pool, 64, 200, rng)
        assert np.mean([e.wall_time for e in many]) < np.mean(
            [e.wall_time for e in few]
        )

    def test_bootstrap_requires_solved_samples(self, rng):
        cluster = VirtualCluster(HA8000, host_iteration_rate=1000.0)
        with pytest.raises(AnalysisError):
            cluster.simulate_run([], 8, rng)
        unsolved = [WalkSample(iterations=10, solved=False)]
        with pytest.raises(AnalysisError):
            cluster.simulate_run(unsolved, 8, rng)

    def test_bootstrap_surfaces_censored_fraction(self, rng):
        """Regression: unsolved (budget-censored) pool samples used to be
        discarded silently; the estimate must carry the censored fraction."""
        cluster = VirtualCluster(HA8000, host_iteration_rate=1000.0)
        pool = make_pool(rng, 80) + [
            WalkSample(iterations=10_000, solved=False) for _ in range(20)
        ]
        estimate = cluster.simulate_run(pool, 16, rng)
        assert estimate.censored_fraction == pytest.approx(0.2)
        assert estimate.solved
        # A clean pool reports zero censoring.
        clean = cluster.simulate_run(make_pool(rng), 16, rng)
        assert clean.censored_fraction == 0.0

    def test_mostly_censored_pool_is_refused_without_opt_in(self, rng):
        cluster = VirtualCluster(HA8000, host_iteration_rate=1000.0)
        pool = make_pool(rng, 20) + [
            WalkSample(iterations=10_000, solved=False) for _ in range(80)
        ]
        with pytest.raises(AnalysisError, match="budget-censored"):
            cluster.simulate_run(pool, 16, rng)
        with pytest.raises(AnalysisError, match="budget-censored"):
            cluster.simulate_many(pool, 16, 3, rng)
        # The documented opt-in downgrades the refusal to a warning and
        # surfaces the bias on the estimate.
        with pytest.warns(UserWarning, match="biased low"):
            estimate = cluster.simulate_run(pool, 16, rng, allow_censored=True)
        assert estimate.censored_fraction == pytest.approx(0.8)
        with pytest.warns(UserWarning):
            many = cluster.simulate_many(pool, 16, 3, rng, allow_censored=True)
        assert all(e.censored_fraction == pytest.approx(0.8) for e in many)

    def test_exponential_sampling_reports_no_censoring(self, rng):
        cluster = VirtualCluster(HA8000, host_iteration_rate=1000.0)
        estimate = cluster.simulate_run(
            [], 16, rng, sampling="exponential", exponential_fit=(10.0, 500.0)
        )
        assert estimate.censored_fraction == 0.0

    def test_exponential_sampling(self, rng):
        cluster = VirtualCluster(HA8000, host_iteration_rate=1000.0)
        estimate = cluster.simulate_run(
            [], 128, rng, sampling="exponential", exponential_fit=(10.0, 800.0)
        )
        assert estimate.solved
        with pytest.raises(AnalysisError):
            cluster.simulate_run([], 8, rng, sampling="exponential")
        with pytest.raises(AnalysisError):
            cluster.simulate_run(
                [], 8, rng, sampling="exponential", exponential_fit=(1.0, 0.0)
            )

    def test_unknown_sampling_rejected(self, rng):
        cluster = VirtualCluster(HA8000, host_iteration_rate=1000.0)
        with pytest.raises(AnalysisError):
            cluster.simulate_run(make_pool(rng), 8, rng, sampling="magic")

    def test_simulate_many_validation(self, rng):
        cluster = VirtualCluster(HA8000, host_iteration_rate=1000.0)
        with pytest.raises(ParallelExecutionError):
            cluster.simulate_many(make_pool(rng), 8, 0, rng)

    def test_direct_run_on_real_problem(self):
        cluster = VirtualCluster(LOCAL_HOST, host_iteration_rate=1000.0)
        estimate = cluster.direct_run(
            lambda: CostasProblem(9),
            ASParameters.for_costas(9),
            cores=3,
            seeds=[1, 2, 3],
        )
        assert estimate.solved
        assert estimate.cores == 3
        with pytest.raises(ParallelExecutionError):
            cluster.direct_run(
                lambda: CostasProblem(9), ASParameters.for_costas(9), 3, seeds=[1]
            )
