"""Compiled walk engine tests: RNG stream spec, compiled-vs-mirror
trajectory bit-exactness, population semantics and the fallback contract.

The central invariant is the one :mod:`repro.core.cwalk_mirror` exists for:
a compiled walk (``as_walk_run``) and a :class:`MirrorWalk` started from the
same seed must agree on *every bit of state after every iteration* —
permutation, cost, tabu marks, all five counters, the best-so-far — across
all three compiled families and every ablation flag the kernel branches on.
The comparison steps both sides one iteration at a time (``steps=1``), so
the first divergence pinpoints the iteration that broke.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import _ckernels
from repro.core.cwalk import (
    STATUS_MAX_ITERATIONS,
    STATUS_RUNNING,
    STATUS_SOLVED,
    WS_BEST,
    WS_COST,
    WS_ITER,
    WS_LOCALMIN,
    WS_PLATEAU,
    WS_RESETS,
    WS_RESTARTS,
    WS_STATUS,
    WS_SWAPS,
    CompiledAdaptiveSearch,
    WalkPopulation,
    population_seeds,
    supports,
    walk_spec,
)
from repro.core.cwalk_mirror import MirrorWalk, Xoshiro256
from repro.core.params import ASParameters
from repro.models import (
    AllIntervalProblem,
    CostasProblem,
    MagicSquareProblem,
    NQueensProblem,
)

requires_kernels = pytest.mark.skipif(
    _ckernels.load() is None, reason="C kernels unavailable"
)


# ------------------------------------------------------------------ RNG spec
@requires_kernels
class TestRngStream:
    """The kernel's xoshiro256** stream matches the Python mirror bit-for-bit."""

    @given(seed=st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=25, deadline=None)
    def test_raw_stream_matches_mirror(self, seed):
        lib = _ckernels.load()
        count = 64
        out = np.zeros(count, dtype=np.int64)
        lib.walk_rng_stream(seed if seed < (1 << 63) else seed - (1 << 64),
                            count, out.ctypes.data)
        rng = Xoshiro256(seed)
        expected = [rng.next_u64() for _ in range(count)]
        assert out.view(np.uint64).tolist() == expected

    @given(
        seed=st.integers(min_value=0, max_value=(1 << 63) - 1),
        k=st.integers(min_value=1, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_derived_draws_match_mirror(self, seed, k):
        # below(k) and the [0,1) double must consume draws identically.
        lib = _ckernels.load()
        count = 32
        below = np.zeros(count, dtype=np.int64)
        dbl = np.zeros(count, dtype=np.float64)
        lib.walk_rng_draws(seed, k, count, below.ctypes.data, dbl.ctypes.data)
        rng = Xoshiro256(seed)
        for i in range(count):
            assert below[i] == rng.below(k)
            assert dbl[i] == rng.random()

    def test_distinct_seeds_distinct_streams(self):
        a, b = Xoshiro256(1), Xoshiro256(2)
        assert [a.next_u64() for _ in range(8)] != [b.next_u64() for _ in range(8)]


# ----------------------------------------------------------- trajectory spec
def _problem_cases():
    """(label, problem factory, params) across families and ablation flags."""
    return [
        (
            "costas-dedicated",
            lambda: CostasProblem(9),
            ASParameters.for_costas(9),
        ),
        (
            "costas-generic-reset",
            lambda: CostasProblem(9, dedicated_reset=False),
            ASParameters.for_costas(9),
        ),
        (
            "costas-basic-nochang",
            lambda: CostasProblem(
                8, err_weight="constant", use_chang=False, dedicated_reset=False
            ),
            ASParameters.for_problem_size(8),
        ),
        (
            "costas-clear-tabu-off",
            lambda: CostasProblem(9),
            ASParameters.for_costas(9, clear_tabu_on_reset=False),
        ),
        (
            "queens",
            lambda: NQueensProblem(10),
            ASParameters.for_problem_size(
                10, plateau_probability=0.5, reset_limit=3
            ),
        ),
        (
            "queens-restarts",
            lambda: NQueensProblem(9),
            ASParameters.for_problem_size(
                9, restart_limit=40, max_restarts=5, plateau_probability=0.3
            ),
        ),
        (
            "all-interval",
            lambda: AllIntervalProblem(10),
            ASParameters.for_problem_size(
                10,
                tabu_tenure=3,
                reset_limit=1,
                plateau_probability=0.9,
                local_min_accept_probability=0.5,
            ),
        ),
    ]


def _assert_walks_identical(pop, mirror, label, seed, iteration):
    st_row = pop.state[0]
    context = f"{label} seed={seed} iter={iteration}"
    assert pop.perm[0].tolist() == mirror.perm, context
    assert int(st_row[WS_COST]) == mirror.cost, context
    assert int(st_row[WS_ITER]) == mirror.iteration, context
    assert int(st_row[WS_SWAPS]) == mirror.swaps, context
    assert int(st_row[WS_PLATEAU]) == mirror.plateau_moves, context
    assert int(st_row[WS_LOCALMIN]) == mirror.local_minima, context
    assert int(st_row[WS_RESETS]) == mirror.resets, context
    assert int(st_row[WS_RESTARTS]) == mirror.restarts, context
    assert pop.tabu[0].tolist() == mirror.tabu, context
    assert int(st_row[WS_BEST]) == mirror.best_cost, context
    assert pop.best[0].tolist() == mirror.best, context
    assert int(st_row[WS_STATUS]) == mirror.status, context


@requires_kernels
class TestTrajectoryBitExactness:
    """Compiled walk == Python mirror, one iteration at a time."""

    @pytest.mark.parametrize(
        "label,factory,params",
        _problem_cases(),
        ids=[c[0] for c in _problem_cases()],
    )
    @pytest.mark.parametrize("seed", [0, 1, 12345])
    def test_full_trajectory_matches_mirror(self, label, factory, params, seed):
        import dataclasses

        budget = 400
        params = dataclasses.replace(params, max_iterations=budget)
        problem = factory()
        spec = walk_spec(problem, params)
        assert spec is not None
        pop = WalkPopulation(spec)
        pop.init([seed])
        mirror = MirrorWalk(spec.pi, spec.pd, spec.wd, spec.consts, seed)

        # Initial permutations (one RNG-driven shuffle each) already agree.
        assert pop.perm[0].tolist() == mirror.perm

        pop.run(0)  # settle iteration-0 statuses exactly like the mirror loop
        mirror.run(0)
        for iteration in range(budget + 1):
            if int(pop.state[0, WS_STATUS]) != STATUS_RUNNING:
                break
            pop.run(1)
            mirror.run(1)
            _assert_walks_identical(pop, mirror, label, seed, iteration)
        # Both sides settled the same terminal status.
        assert int(pop.state[0, WS_STATUS]) == mirror.status
        assert int(pop.state[0, WS_STATUS]) in (
            STATUS_SOLVED,
            STATUS_MAX_ITERATIONS,
        )

    @given(seed=st.integers(min_value=0, max_value=(1 << 63) - 1))
    @settings(max_examples=10, deadline=None)
    def test_costas_trajectory_property(self, seed):
        # Property form of the same invariant: arbitrary seeds on the full
        # costas model (dedicated reset + chang + quadratic weights).
        import dataclasses

        params = dataclasses.replace(
            ASParameters.for_costas(8), max_iterations=200
        )
        spec = walk_spec(CostasProblem(8), params)
        pop = WalkPopulation(spec)
        pop.init([seed])
        mirror = MirrorWalk(spec.pi, spec.pd, spec.wd, spec.consts, seed)
        pop.run(0)
        mirror.run(0)
        while int(pop.state[0, WS_STATUS]) == STATUS_RUNNING:
            pop.run(1)
            mirror.run(1)
            _assert_walks_identical(pop, mirror, "costas-property", seed, None)

    def test_given_initial_configuration_skips_the_shuffle(self):
        params = ASParameters.for_costas(8)
        problem = CostasProblem(8)
        spec = walk_spec(problem, params)
        start = np.arange(8, dtype=np.int64)[::-1].copy()
        pop = WalkPopulation(spec)
        pop.init([7], given=start.reshape(1, 8))
        mirror = MirrorWalk(
            spec.pi, spec.pd, spec.wd, spec.consts, 7, given=start.tolist()
        )
        assert pop.perm[0].tolist() == mirror.perm == start.tolist()
        pop.run(50)
        mirror.run(50)
        _assert_walks_identical(pop, mirror, "given-start", 7, None)


# ----------------------------------------------------------------- solver API
@requires_kernels
class TestCompiledSolver:
    def test_solves_all_three_families(self):
        cases = [
            (CostasProblem(10), ASParameters.for_costas(10)),
            (
                NQueensProblem(12),
                ASParameters.for_problem_size(12, plateau_probability=0.5),
            ),
            (
                AllIntervalProblem(8),
                ASParameters.for_problem_size(
                    8,
                    tabu_tenure=2,
                    reset_limit=1,
                    plateau_probability=0.9,
                    local_min_accept_probability=0.5,
                ),
            ),
        ]
        for problem, params in cases:
            assert supports(problem)
            result = CompiledAdaptiveSearch(params).solve(problem, seed=5)
            assert result.solved, problem.describe()
            assert result.extra["engine"] == "compiled"
            assert problem.cost() == 0
            # The solution was loaded back into the problem instance.
            assert problem.configuration().tolist() == list(
                result.configuration
            )

    def test_deterministic_per_seed_and_counters_consistent(self):
        params = ASParameters.for_costas(11)
        a = CompiledAdaptiveSearch(params).solve(CostasProblem(11), seed=99)
        b = CompiledAdaptiveSearch(params).solve(CostasProblem(11), seed=99)
        assert list(a.configuration) == list(b.configuration)
        for attr in (
            "cost",
            "iterations",
            "swaps",
            "plateau_moves",
            "local_minima",
            "resets",
            "restarts",
            "stop_reason",
        ):
            assert getattr(a, attr) == getattr(b, attr), attr
        # An iteration either swaps or marks; swaps can never exceed iterations.
        assert a.swaps <= a.iterations

    def test_counters_match_mirror_end_to_end(self):
        import dataclasses

        params = dataclasses.replace(
            ASParameters.for_costas(9), max_iterations=300
        )
        result = CompiledAdaptiveSearch(params).solve(CostasProblem(9), seed=17)
        spec = walk_spec(CostasProblem(9), params)
        mirror = MirrorWalk(spec.pi, spec.pd, spec.wd, spec.consts, 17)
        while mirror.run(64):
            pass
        assert result.iterations == mirror.iteration
        assert result.swaps == mirror.swaps
        assert result.plateau_moves == mirror.plateau_moves
        assert result.local_minima == mirror.local_minima
        assert result.resets == mirror.resets
        assert result.restarts == mirror.restarts
        assert result.cost == mirror.best_cost

    def test_max_iterations_stop_reason(self):
        import dataclasses

        params = dataclasses.replace(
            ASParameters.for_costas(16), max_iterations=50
        )
        result = CompiledAdaptiveSearch(params).solve(CostasProblem(16), seed=0)
        if not result.solved:  # 50 iterations virtually never solve n=16
            assert result.stop_reason == "max_iterations"
            assert result.iterations == 50

    def test_unsupported_family_falls_back_to_numpy(self):
        problem = MagicSquareProblem(3)
        assert not supports(problem)
        params = ASParameters.for_problem_size(9)
        result = CompiledAdaptiveSearch(params).solve(problem, seed=4)
        assert result.solver == "compiled-adaptive-search"
        assert result.extra["engine"] == "numpy-fallback"

    def test_kill_switch_falls_back(self, monkeypatch):
        # Simulate REPRO_NO_CKERNELS / no-compiler: the memoised load()
        # verdict is forced to "unavailable" (monkeypatch restores it).
        monkeypatch.setattr(_ckernels, "_lib", None)
        monkeypatch.setattr(_ckernels, "_loaded", True)
        result = CompiledAdaptiveSearch(
            ASParameters.for_costas(8)
        ).solve(CostasProblem(8), seed=2)
        assert result.extra["engine"] == "numpy-fallback"
        assert result.solver == "compiled-adaptive-search"


# ---------------------------------------------------------------- population
@requires_kernels
class TestPopulation:
    def test_population_walk_equals_single_walk_with_same_seed(self):
        # Walk w of a population run is bit-identical to a single-walk run
        # seeded with population_seeds(seed, W)[w] — batching must not change
        # any walk's trajectory (modulo the sibling first-past-the-post stop,
        # so compare the raw kernel states on a fixed iteration budget).
        import dataclasses

        params = dataclasses.replace(
            ASParameters.for_costas(10), max_iterations=120
        )
        spec = walk_spec(CostasProblem(10), params)
        seeds = population_seeds(42, 4)
        batch = WalkPopulation(spec)
        batch.init(seeds)
        while batch.run(64):
            pass
        for w, seed in enumerate(seeds):
            single = WalkPopulation(spec)
            single.init([seed])
            while single.run(64):
                pass
            assert single.state[0].tolist() == batch.state[w].tolist(), w
            assert single.perm[0].tolist() == batch.perm[w].tolist(), w
            assert single.best[0].tolist() == batch.best[w].tolist(), w

    def test_population_results_and_first_past_the_post(self):
        params = ASParameters.for_costas(12)
        solver = CompiledAdaptiveSearch(params)
        results = solver.solve_population(
            CostasProblem(12), seed=7, population=4
        )
        assert len(results) == 4
        assert any(r.solved for r in results)
        assert {r.extra["walk"] for r in results} == {0, 1, 2, 3}
        assert [r.seed for r in results] == population_seeds(7, 4)
        winner_iters = min(r.iterations for r in results if r.solved)
        for r in results:
            assert r.extra["population"] == 4
            if not r.solved:
                # Losers stopped at the boundary following the win: within
                # one check_period of the winning walk's solve iteration.
                assert r.stop_reason == "external_stop"
                assert (
                    r.iterations
                    <= (winner_iters // params.check_period + 1)
                    * params.check_period
                )

    def test_population_stop_check_within_one_check_period(self):
        import dataclasses

        params = dataclasses.replace(
            ASParameters.for_costas(18), check_period=32
        )
        polls = {"n": 0}

        def stop_after_first_poll():
            polls["n"] += 1
            return polls["n"] > 1

        results = CompiledAdaptiveSearch(params).solve_population(
            CostasProblem(18),
            seed=1,
            population=3,
            stop_check=stop_after_first_poll,
        )
        for r in results:
            if not r.solved:
                assert r.stop_reason == "external_stop"
            # One period ran between the two polls; no walk may exceed it.
            assert r.iterations <= params.check_period

    def test_population_seeds_deterministic(self):
        assert population_seeds(5, 3) == population_seeds(5, 3)
        assert population_seeds(5, 3) != population_seeds(6, 3)

    def test_population_fallback_sequential(self, monkeypatch):
        monkeypatch.setattr(_ckernels, "_lib", None)
        monkeypatch.setattr(_ckernels, "_loaded", True)
        results = CompiledAdaptiveSearch(
            ASParameters.for_costas(8)
        ).solve_population(CostasProblem(8), seed=3, population=2)
        assert len(results) == 2
        assert any(r.solved for r in results)
        for w, r in enumerate(results):
            assert r.extra["engine"] == "numpy-fallback"
            assert r.extra["population"] == 2
            assert r.extra["walk"] == w

    def test_population_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="population"):
            CompiledAdaptiveSearch().solve_population(
                CostasProblem(8), population=0
            )


# ------------------------------------------------------------------ plumbing
@requires_kernels
class TestPlumbing:
    def test_run_spec_population_returns_best_with_aggregate(self):
        from repro.solvers import run_spec

        result = run_spec(
            "compiled",
            CostasProblem(12),
            seed=11,
            problem_kind="costas",
            population=4,
        )
        assert result.solved
        assert result.extra["population"] == 4
        assert result.extra["population_iterations"] >= result.iterations

    def test_run_spec_population_degrades_for_plain_solvers(self):
        from repro.solvers import run_spec

        result = run_spec(
            "tabu", CostasProblem(8), seed=0, problem_kind="costas", population=4
        )
        assert result.solved
        assert "population" not in result.extra

    def test_multiwalk_population_inline(self):
        from repro.parallel.multiwalk import MultiWalkSolver
        from repro.problems import problem_factory

        mw = MultiWalkSolver(
            problem_factory("costas", 10),
            ASParameters.for_costas(10),
            solver="compiled",
            n_workers=1,
            seed_root=9,
            population=3,
        )
        outcome = mw.solve(max_time=30)
        assert outcome.solved
        assert outcome.best.extra["population"] == 3

    def test_service_surfaces_engine_mode_and_population(self):
        from repro.service.api import ServiceConfig, SolverService

        config = ServiceConfig(
            store_path=":memory:", n_workers=1, population=2,
            use_constructions=False, default_solver="compiled",
            default_max_time=30.0,
        )
        with SolverService(config) as svc:
            stats = svc.stats()
            assert stats["engine"]["kernel_mode"] in ("c", "numpy")
            assert stats["engine"]["population"] == 2
            assert stats["config"]["population"] == 2
            health = svc.health()
            assert health["components"]["engine"]["population"] == 2
            response = svc.submit(10, kind="costas").result(timeout=60)
            assert response.solved
            assert response.detail["population"] == 2
            assert response.detail["engine"] == "compiled"
