"""Tests for the experiment runner and run-pool persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import RunSummary
from repro.exceptions import AnalysisError, ParallelExecutionError
from repro.experiments.base import costas_factory, costas_params
from repro.parallel.cluster import HA8000, JUGENE, WalkSample
from repro.parallel.runner import ExperimentRunner, RunPool


@pytest.fixture(scope="module")
def small_pool() -> RunPool:
    runner = ExperimentRunner()
    return runner.collect_pool(costas_factory(9), costas_params(9), 20, seed_root=1)


class TestRunPool:
    def test_collect_pool_contents(self, small_pool):
        assert len(small_pool) == 20
        assert small_pool.host_iteration_rate > 0
        assert all(s.solved for s in small_pool.solved_samples)
        assert len(small_pool.solved_samples) == 20  # order 9 always solves
        assert "costas" in small_pool.problem

    def test_iteration_and_time_arrays(self, small_pool):
        iters = small_pool.iterations()
        times = small_pool.wall_times()
        assert iters.shape == times.shape == (20,)
        assert np.all(iters >= 0)
        assert np.all(times >= 0)

    def test_summary(self, small_pool):
        summary = small_pool.summary("iterations")
        assert isinstance(summary, RunSummary)
        assert summary.count == 20
        with pytest.raises(AnalysisError):
            small_pool.summary("bogus")

    def test_json_roundtrip(self, tmp_path, small_pool):
        path = tmp_path / "pool.json"
        small_pool.save(path)
        loaded = RunPool.load(path)
        assert loaded.problem == small_pool.problem
        assert len(loaded) == len(small_pool)
        assert loaded.host_iteration_rate == pytest.approx(
            small_pool.host_iteration_rate
        )
        assert [s.iterations for s in loaded.samples] == [
            s.iterations for s in small_pool.samples
        ]


class TestExperimentRunner:
    def test_pool_is_deterministic_given_seed_root(self):
        runner = ExperimentRunner()
        a = runner.collect_pool(
            costas_factory(8), costas_params(8), 10, seed_root=5, use_cache=False
        )
        b = runner.collect_pool(
            costas_factory(8), costas_params(8), 10, seed_root=5, use_cache=False
        )
        assert [s.iterations for s in a.samples] == [s.iterations for s in b.samples]

    def test_memory_cache_returns_same_object(self):
        runner = ExperimentRunner()
        a = runner.collect_pool(costas_factory(8), costas_params(8), 5)
        b = runner.collect_pool(costas_factory(8), costas_params(8), 5)
        assert a is b

    def test_disk_cache_roundtrip(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        a = runner.collect_pool(costas_factory(8), costas_params(8), 5)
        assert list(tmp_path.glob("pool-*.json"))
        # A fresh runner with the same cache dir loads from disk.
        other = ExperimentRunner(cache_dir=tmp_path)
        b = other.collect_pool(costas_factory(8), costas_params(8), 5)
        assert [s.iterations for s in a.samples] == [s.iterations for s in b.samples]

    def test_cache_key_is_stable_across_processes(self):
        # abs(hash(payload)) was salted by PYTHONHASHSEED, so on-disk pools
        # could never be rehit by a later run; the key must now be a pure
        # function of the payload.
        import hashlib
        import subprocess
        import sys

        runner = ExperimentRunner()
        problem = costas_factory(8)()
        params = costas_params(8)
        key = runner._cache_key(problem, params, 5)
        payload = f"{problem.describe()}|{params}|runs=5"
        assert key == hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
        # Recompute in a subprocess with a different hash seed: same key.
        code = (
            "from repro.parallel.runner import ExperimentRunner\n"
            "from repro.experiments.base import costas_factory, costas_params\n"
            "print(ExperimentRunner()._cache_key("
            "costas_factory(8)(), costas_params(8), 5))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={**__import__("os").environ, "PYTHONHASHSEED": "424242"},
        )
        assert out.stdout.strip() == key

    def test_collect_pool_validation(self):
        runner = ExperimentRunner()
        with pytest.raises(ParallelExecutionError):
            runner.collect_pool(costas_factory(8), costas_params(8), 0)

    def test_parallel_time_summary_improves_with_cores(self, small_pool):
        runner = ExperimentRunner()
        few = runner.parallel_time_summary(small_pool, HA8000, 2, 50, rng=1)
        many = runner.parallel_time_summary(small_pool, HA8000, 16, 50, rng=1)
        assert many.mean < few.mean

    def test_sequential_summary_scales_with_machine_speed(self, small_pool):
        runner = ExperimentRunner()
        host = runner.sequential_time_summary(small_pool, HA8000)
        slow = runner.sequential_time_summary(small_pool, JUGENE)
        assert slow.mean > host.mean

    def test_exponential_sampling_mode(self, small_pool):
        runner = ExperimentRunner()
        summary = runner.parallel_time_summary(
            small_pool, HA8000, 32, 20, rng=0, sampling="exponential"
        )
        assert summary.mean > 0

    def test_empty_pool_rejected(self):
        runner = ExperimentRunner()
        empty = RunPool(problem="costas(n=9)", samples=[], host_iteration_rate=100.0)
        with pytest.raises(AnalysisError):
            runner.parallel_time_summary(empty, HA8000, 8, 10)
        with pytest.raises(AnalysisError):
            runner.sequential_time_summary(empty, HA8000)
