"""Tests for the Adaptive Search model of the Costas Array Problem."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.costas.array import is_costas, violation_count
from repro.exceptions import ModelError
from repro.models.costas import (
    CostasProblem,
    basic_costas_problem,
    optimized_costas_problem,
)

perm_strategy = st.integers(min_value=4, max_value=10).flatmap(
    lambda n: st.permutations(list(range(n)))
)


class TestConstruction:
    def test_requires_order_at_least_three(self):
        with pytest.raises(ModelError):
            CostasProblem(2)

    def test_rejects_unknown_weighting(self):
        with pytest.raises(ModelError):
            CostasProblem(8, err_weight="cubic")

    def test_factories(self):
        basic = basic_costas_problem(8)
        assert basic.err_weight_name == "constant"
        assert basic.max_distance == 7
        assert not basic.uses_dedicated_reset
        optimised = optimized_costas_problem(8)
        assert optimised.err_weight_name == "quadratic"
        assert optimised.max_distance == 3
        assert optimised.uses_dedicated_reset

    def test_describe_mentions_options(self):
        text = CostasProblem(8).describe()
        assert "costas" in text and "n=8" in text

    def test_set_configuration_validation(self):
        problem = CostasProblem(6)
        with pytest.raises(ModelError):
            problem.set_configuration([0, 1, 2])
        with pytest.raises(ModelError):
            problem.set_configuration([0, 0, 1, 2, 3, 4])


class TestCostSemantics:
    def test_zero_cost_on_costas_array(self, example_costas_5):
        problem = CostasProblem(5)
        problem.set_configuration(example_costas_5)
        assert problem.cost() == 0
        assert problem.is_solution()
        assert problem.as_costas_array().order == 5

    def test_basic_model_cost_equals_violation_count(self):
        perm = list(range(7))
        problem = basic_costas_problem(7)
        problem.set_configuration(perm)
        assert problem.cost() == violation_count(perm)

    @given(perm_strategy)
    def test_zero_cost_iff_costas_with_chang(self, perm):
        problem = CostasProblem(len(perm), use_chang=True)
        problem.set_configuration(perm)
        assert (problem.cost() == 0) == is_costas(perm)

    @given(perm_strategy)
    def test_variable_errors_zero_iff_zero_cost(self, perm):
        problem = CostasProblem(len(perm))
        problem.set_configuration(perm)
        errors = problem.variable_errors()
        assert (errors.sum() == 0) == (problem.cost() == 0)
        assert errors.shape == (len(perm),)
        assert np.all(errors >= 0)

    def test_as_costas_array_raises_on_non_solution(self):
        problem = CostasProblem(6)
        problem.set_configuration(list(range(6)))
        with pytest.raises(ValueError):
            problem.as_costas_array()


class TestMoves:
    @given(perm_strategy, st.data())
    def test_swap_deltas_match_individual_deltas(self, perm, data):
        problem = CostasProblem(len(perm))
        problem.set_configuration(perm)
        i = data.draw(st.integers(min_value=0, max_value=len(perm) - 1))
        deltas = problem.swap_deltas(i)
        for j in range(len(perm)):
            if j == i:
                assert deltas[j] == np.iinfo(np.int64).max
            else:
                assert deltas[j] == problem.swap_delta(i, j)

    @given(perm_strategy, st.data())
    def test_apply_swap_consistent_with_delta_and_recompute(self, perm, data):
        problem = CostasProblem(len(perm))
        problem.set_configuration(perm)
        i = data.draw(st.integers(min_value=0, max_value=len(perm) - 1))
        j = data.draw(st.integers(min_value=0, max_value=len(perm) - 1))
        before = problem.cost()
        delta = problem.swap_delta(i, j)
        after = problem.apply_swap(i, j)
        assert after == before + delta
        problem.check_consistency()

    def test_swap_same_index_is_noop(self):
        problem = CostasProblem(6)
        problem.set_configuration([0, 2, 4, 1, 3, 5])
        cost = problem.cost()
        assert problem.apply_swap(3, 3) == cost
        assert problem.swap_delta(3, 3) == 0

    def test_check_consistency_detects_corruption(self):
        problem = CostasProblem(6)
        problem.set_configuration(list(range(6)))
        problem._cost += 1  # simulate a bookkeeping bug
        with pytest.raises(AssertionError):
            problem.check_consistency()


class TestDedicatedReset:
    @given(perm_strategy)
    def test_reset_returns_valid_permutation(self, perm):
        problem = CostasProblem(len(perm))
        problem.set_configuration(perm)
        rng = np.random.default_rng(0)
        replacement = problem.custom_reset(rng)
        if replacement is not None:
            assert sorted(replacement) == list(range(len(perm)))

    def test_reset_none_when_disabled(self, rng):
        problem = CostasProblem(8, dedicated_reset=False)
        problem.set_configuration(list(range(8)))
        assert problem.custom_reset(rng) is None

    def test_reset_candidates_are_permutations_and_differ(self, rng):
        problem = CostasProblem(8)
        problem.set_configuration(list(range(8)))
        candidates = problem.reset_candidates(rng)
        assert candidates, "expected at least one perturbation"
        current = list(range(8))
        for cand in candidates:
            assert sorted(cand) == current
        assert any(list(c) != current for c in candidates)

    def test_reset_never_returns_worse_than_best_candidate(self, example_costas_5):
        # From a fixed configuration, the returned perturbation's cost must not
        # exceed the best cost over the candidate set generated with the same
        # random state (the reset either escapes or picks a minimum-cost one).
        near = list(example_costas_5)
        near[0], near[1] = near[1], near[0]

        problem = CostasProblem(5)
        problem.set_configuration(near)
        entry_cost = problem.cost()

        candidates = problem.reset_candidates(np.random.default_rng(3))
        scorer = CostasProblem(5)
        candidate_costs = []
        for cand in candidates:
            scorer.set_configuration(cand)
            candidate_costs.append(scorer.cost())
        best_candidate_cost = min(candidate_costs)

        replacement = problem.custom_reset(np.random.default_rng(3))
        scorer.set_configuration(replacement)
        replacement_cost = scorer.cost()
        assert replacement_cost <= max(best_candidate_cost, entry_cost)

    def test_reset_constants_exclude_multiples_of_n(self):
        problem = CostasProblem(4, reset_constants=[0, 4, 8, 1])
        assert problem._reset_constants == [1]


class TestEndToEnd:
    def test_engine_solves_with_all_variants(self):
        from repro.core import ASParameters, solve

        for kwargs in (
            dict(),
            dict(err_weight="constant"),
            dict(use_chang=False),
            dict(dedicated_reset=False),
        ):
            problem = CostasProblem(9, **kwargs)
            result = solve(problem, seed=0, params=ASParameters.for_costas(9))
            assert result.solved, kwargs
            assert is_costas(result.configuration)
