"""Tests for the ``repro lint`` static-analysis suite.

Covers every checker against good/bad fixtures (exact rule-id and line
assertions), the suppression grammar, the baseline machinery, the CLI
surface (``--json``, ``--rule``, exit codes) and the kernel-mirror drift
checker against deliberately perturbed copies of the real files.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser
from repro.lint import RULES, apply_suppressions, repo_root, run
from repro.lint import kernel_drift
from repro.lint.asyncsafety import check_source as check_async
from repro.lint.determinism import check_source as check_determinism
from repro.lint.findings import (
    Finding,
    load_baseline,
    partition_against_baseline,
)
from repro.lint.http_contract import check_source as check_http
from repro.lint.locks import check_source as check_locks
from repro.lint.runner import run_cli

FIXTURES = Path(__file__).parent / "lint_fixtures"
ROOT = repo_root()
CORE = ROOT / "src" / "repro" / "core"


def _fixture(name: str) -> str:
    return (FIXTURES / name).read_text(encoding="utf-8")


def _lines(findings, rule):
    return sorted(f.line for f in findings if f.rule == rule)


# ------------------------------------------------------------- lock checker
class TestLockChecker:
    def test_bad_fixture_findings(self):
        findings = check_locks(_fixture("bad_locks.py"), "bad_locks.py")
        assert _lines(findings, "lock-order") == [21]
        assert _lines(findings, "lock-blocking") == [31, 35, 39, 43]
        cycle = next(f for f in findings if f.rule == "lock-order")
        assert "_a" in cycle.message and "_b" in cycle.message
        transitive = next(f for f in findings if f.line == 43)
        assert "_slow_helper" in transitive.message
        assert "_state" in transitive.message

    def test_good_fixture_is_clean(self):
        assert check_locks(_fixture("good_locks.py"), "good_locks.py") == []


# ---------------------------------------------------- determinism checker
class TestDeterminismChecker:
    def test_bad_fixture_findings(self):
        findings = check_determinism(
            _fixture("bad_determinism.py"), "bad_determinism.py"
        )
        assert _lines(findings, "unseeded-random") == [12, 16, 20, 24, 28, 32, 36]
        assert all(f.rule == "unseeded-random" for f in findings)

    def test_good_fixture_is_clean(self):
        assert (
            check_determinism(_fixture("good_determinism.py"), "good_determinism.py")
            == []
        )


# ---------------------------------------------------- async-safety checker
class TestAsyncChecker:
    def test_bad_fixture_findings(self):
        findings = check_async(_fixture("bad_async.py"), "bad_async.py")
        assert _lines(findings, "async-blocking") == [8, 9, 11, 15]
        by_line = {f.line: f.message for f in findings}
        assert "time.sleep" in by_line[8]
        assert "file I/O" in by_line[9]
        assert "self.service.stats" in by_line[11]
        assert "future.result" in by_line[15]

    def test_good_fixture_is_clean(self):
        assert check_async(_fixture("good_async.py"), "good_async.py") == []


# -------------------------------------------------- HTTP contract checker
class TestHTTPContractChecker:
    def test_bad_fixture_findings(self):
        findings = check_http(_fixture("bad_http.py"), "bad_http.py")
        assert _lines(findings, "http-retry-contract") == [9, 9, 12, 12, 15]
        messages = "\n".join(f.message for f in findings)
        assert 'lacks the "retry" field' in messages
        assert "no Retry-After header" in messages
        assert "batch item with code 504" in messages

    def test_good_fixture_is_clean(self):
        assert check_http(_fixture("good_http.py"), "good_http.py") == []


# ------------------------------------------------------------ suppressions
class TestSuppressions:
    def test_justified_suppression_drops_finding(self):
        source = _fixture("bad_suppression.py")
        findings = apply_suppressions(
            check_determinism(source, "bad_suppression.py"), source
        )
        # The justified one (line 13) is gone; the unjustified one survives
        # and additionally earns a bad-suppression finding.
        assert _lines(findings, "unseeded-random") == [7]
        assert _lines(findings, "bad-suppression") == [7]

    def test_suppression_requires_matching_rule(self):
        source = (
            "import random\n"
            "def f():\n"
            "    # repro-lint: ignore[lock-order] -- wrong rule entirely\n"
            "    return random.random()\n"
        )
        findings = apply_suppressions(check_determinism(source, "x.py"), source)
        assert _lines(findings, "unseeded-random") == [4]

    def test_inline_justified_suppression(self):
        source = (
            "import random\n"
            "def f():\n"
            "    return random.random()  "
            "# repro-lint: ignore[unseeded-random] -- fixture shim\n"
        )
        findings = apply_suppressions(check_determinism(source, "x.py"), source)
        assert findings == []


# ---------------------------------------------------------------- baseline
class TestBaseline:
    def test_partition_is_a_multiset(self):
        f = Finding("a.py", 3, "lock-order", "cycle")
        twice = [f, Finding("a.py", 9, "lock-order", "cycle")]
        new, baselined, stale = partition_against_baseline(
            twice, [f.baseline_key()]
        )
        assert len(new) == 1 and len(baselined) == 1 and stale == []

    def test_stale_entries_reported_not_fatal(self, tmp_path):
        baseline = tmp_path / "baseline.txt"
        baseline.write_text("# comment\nold.py|lock-order|gone\n")
        keys = load_baseline(baseline)
        new, baselined, stale = partition_against_baseline([], keys)
        assert new == [] and baselined == []
        assert stale == ["old.py|lock-order|gone"]

    def test_repo_tree_is_clean_against_committed_baseline(self):
        result = run()
        assert result.exit_code == 0, [f.render() for f in result.new]


# ------------------------------------------------------------ drift checker
@pytest.fixture
def drift_copies(tmp_path):
    """Copies of the real kernel trio, free to perturb."""
    paths = {}
    for name in ("_kernels.c", "_ckernels.py", "cwalk_mirror.py"):
        dst = tmp_path / name
        shutil.copy(CORE / name, dst)
        paths[name] = dst
    return paths


class TestKernelDrift:
    def _check(self, paths):
        return kernel_drift.check_files(
            paths["_kernels.c"], paths["_ckernels.py"], paths["cwalk_mirror.py"]
        )

    def test_real_trio_is_clean(self):
        findings = kernel_drift.check_files(
            CORE / "_kernels.c", CORE / "_ckernels.py", CORE / "cwalk_mirror.py"
        )
        assert findings == []

    def test_detects_dropped_argtype(self, drift_copies):
        path = drift_copies["_ckernels.py"]
        src = path.read_text()
        full = "[_p64, _p64, _p64, _i64, _i64, _i64, _i64, _p64, _i64, _p64]"
        assert full in src
        path.write_text(
            src.replace(full, full.replace(", _p64]", "]"), 1)
        )
        findings = self._check(drift_copies)
        assert any(
            f.rule == "kernel-drift" and "costas_swap_deltas" in f.message
            for f in findings
        )

    def test_detects_renamed_signature_key(self, drift_copies):
        path = drift_copies["_ckernels.py"]
        src = path.read_text()
        path.write_text(
            src.replace('"costas_swap_deltas"', '"costas_swap_deltaz"', 1)
        )
        findings = self._check(drift_copies)
        messages = "\n".join(f.message for f in findings)
        assert "costas_swap_deltas" in messages  # missing ctypes entry
        assert "costas_swap_deltaz" in messages  # missing C definition

    def test_detects_perturbed_mirror_constant(self, drift_copies):
        path = drift_copies["cwalk_mirror.py"]
        src = path.read_text()
        assert "0x9E3779B97F4A7C15" in src
        path.write_text(src.replace("0x9E3779B97F4A7C15", "0x9E3779B97F4A7C16"))
        findings = self._check(drift_copies)
        assert any(f.rule == "rng-drift" for f in findings)


# ------------------------------------------------------------------- CLI
def _cli(argv):
    """Run ``repro lint`` in-process; returns (exit_code, stdout_lines)."""
    args = build_parser().parse_args(["lint", *argv])
    return run_cli(args)


class TestCLI:
    BAD_FIXTURES = [
        "bad_locks.py",
        "bad_determinism.py",
        "bad_async.py",
        "bad_http.py",
        "bad_suppression.py",
    ]

    @pytest.mark.parametrize("name", BAD_FIXTURES)
    def test_bad_fixture_exits_nonzero(self, name, capsys):
        code = _cli([str(FIXTURES / name)])
        out = capsys.readouterr().out
        assert code == 1
        assert "repro lint:" in out and "finding" in out

    @pytest.mark.parametrize(
        "name", ["good_locks.py", "good_determinism.py", "good_async.py",
                 "good_http.py"]
    )
    def test_good_fixture_exits_zero(self, name, capsys):
        code = _cli([str(FIXTURES / name)])
        assert code == 0
        assert "repro lint: clean" in capsys.readouterr().out

    def test_whole_tree_exits_zero(self, capsys):
        code = _cli([])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "repro lint: clean" in out

    def test_json_output(self, capsys):
        code = _cli(["--json", str(FIXTURES / "bad_determinism.py")])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["count"] == 7 == len(payload["findings"])
        first = payload["findings"][0]
        assert set(first) == {"file", "line", "rule", "message"}
        assert first["rule"] == "unseeded-random"

    def test_rule_filter(self, capsys):
        code = _cli(["--rule", "lock-order", str(FIXTURES / "bad_locks.py")])
        out = capsys.readouterr().out
        assert code == 1
        assert "lock-order" in out and "lock-blocking" not in out

    def test_rule_filter_can_silence(self, capsys):
        code = _cli(
            ["--rule", "unseeded-random", str(FIXTURES / "bad_locks.py")]
        )
        assert code == 0
        assert "repro lint: clean" in capsys.readouterr().out

    def test_unknown_rule_is_usage_error(self, capsys):
        code = _cli(["--rule", "no-such-rule"])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().out

    def test_missing_path_is_usage_error(self, capsys):
        code = _cli([str(FIXTURES / "does_not_exist.py")])
        assert code == 2

    def test_help_documents_rules_and_flags(self):
        parser = build_parser()
        lint_parser = None
        for action in parser._subparsers._group_actions:
            lint_parser = action.choices.get("lint")
        assert lint_parser is not None
        text = lint_parser.format_help()
        assert "--json" in text and "--rule" in text
        # argparse wraps and indents the description, which can split a rule
        # id across lines; rule ids contain no whitespace, so compare
        # against the whitespace-stripped text.
        squashed = "".join(text.split())
        for rule in RULES:
            assert rule in squashed, rule

    def test_subprocess_entry_point(self, tmp_path):
        """End-to-end: the installed CLI module exits 1 on a bad fixture
        and 0 on the repo tree with its committed baseline."""
        env = dict(os.environ)
        src = str(ROOT / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        bad = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint",
             str(FIXTURES / "bad_locks.py")],
            capture_output=True, text=True, env=env, cwd=str(ROOT),
        )
        assert bad.returncode == 1, bad.stdout + bad.stderr
        clean = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint"],
            capture_output=True, text=True, env=env, cwd=str(ROOT),
        )
        assert clean.returncode == 0, clean.stdout + clean.stderr
        assert "repro lint: clean" in clean.stdout
