"""Benchmark regenerating the Section IV-C comparison against a CP solver.

Honesty note: the paper measures this comparison at CAP 19, where a complete
CP solver needs hours while Adaptive Search needs seconds.  At the orders a
pure-Python reproduction can afford (n <= 13-14), a forward-checking solver
still finds *one* Costas array quickly — Costas arrays are plentiful below
order ~16 — so the 400x gap is **not** visible at this scale (EXPERIMENTS.md
discusses this in detail).  What the benchmark checks instead is the structural
driver of the paper's observation: the CP search effort (node count) blows up
much faster with the order than the local-search effort does, which is what
eventually produces the gap at the paper's instance sizes.
"""

from __future__ import annotations

from conftest import run_experiment_once

from repro.experiments.cp_comparison import run_cp_comparison


def test_cp_comparison_reports_and_nodes_blow_up(benchmark, scale, runner):
    result = run_experiment_once(benchmark, run_cp_comparison, scale, runner)
    assert result.rows
    rows = sorted(
        (r for r in result.rows if r["cp_avg_nodes"] is not None),
        key=lambda r: r["order"],
    )
    assert rows, "expected at least one CP measurement"
    # CP node counts must grow steeply with the order (super-linear growth).
    if len(rows) >= 2:
        first, last = rows[0], rows[-1]
        order_growth = last["order"] / first["order"]
        node_growth = last["cp_avg_nodes"] / max(first["cp_avg_nodes"], 1.0)
        assert node_growth > order_growth
