"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper through the
experiment drivers in :mod:`repro.experiments`.  The drivers share a single
:class:`~repro.parallel.runner.ExperimentRunner` per session so the expensive
sequential run pools are collected once and reused by every table that needs
them (exactly like the paper reuses one implementation across testbeds).

Experiment regeneration is measured with ``benchmark.pedantic(rounds=1)`` —
the quantity of interest is the table content, not a micro-timing — while the
micro-benchmarks in ``bench_engine.py`` use the normal calibrated mode.

Run with ``pytest benchmarks/ --benchmark-only -s`` to also see the
regenerated tables on stdout.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentScale
from repro.parallel.runner import ExperimentRunner

# The scale preset benchmarks run at.  "default" keeps every qualitative claim
# of the paper visible while staying laptop-friendly; switch to "paper" to
# attempt the full-size experiments (very slow in pure Python).
BENCH_SCALE = "default"


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return ExperimentScale.by_name(BENCH_SCALE)


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner()


def run_experiment_once(benchmark, driver, scale, runner):
    """Run one experiment driver exactly once under pytest-benchmark timing."""
    result = benchmark.pedantic(driver, args=(scale, runner), rounds=1, iterations=1)
    print()
    print(result.format())
    return result
