"""Benchmark regenerating Figure 2 — speed-ups w.r.t. the smallest core count."""

from __future__ import annotations

from conftest import run_experiment_once

from repro.experiments.figure2 import run_figure2


def test_figure2_speedups_track_ideal(benchmark, scale, runner):
    result = run_experiment_once(benchmark, run_figure2, scale, runner)
    by_machine = {}
    for row in result.rows:
        by_machine.setdefault(row["machine"], []).append(row)
    for machine, rows in by_machine.items():
        rows.sort(key=lambda r: r["cores"])
        # Speed-up grows with the core count and stays a significant fraction
        # of ideal (the paper's "times halve when cores double" claim; some
        # saturation is expected at reproduction scale).
        speedups = [r["speedup"] for r in rows]
        assert speedups == sorted(speedups), machine
        assert rows[1]["efficiency"] > 0.5, machine
