"""Benchmark of the *real* multiprocessing multi-walk solver on this machine.

The virtual cluster regenerates the paper's large-core tables; this benchmark
exercises the genuinely parallel path (Section V-A's implementation, with
processes instead of MPI ranks) on the host's own cores and checks that the
multi-walk wall-clock time is not worse than a comparable single walk.
"""

from __future__ import annotations

import os

from repro.core.params import ASParameters
from repro.experiments.base import costas_factory
from repro.parallel.multiwalk import MultiWalkSolver

ORDER = 12
WALK_SETS = 3  # number of multi-walk executions to average inside the benchmark


def _run_multiwalk(n_workers: int) -> float:
    total = 0.0
    for repetition in range(WALK_SETS):
        solver = MultiWalkSolver(
            costas_factory(ORDER),
            ASParameters.for_costas(ORDER, check_period=16),
            n_workers=n_workers,
            seed_root=1000 + repetition,
        )
        outcome = solver.solve(max_time=120.0)
        assert outcome.solved
        total += outcome.wall_time
    return total / WALK_SETS


def test_multiwalk_with_all_local_cores(benchmark):
    workers = max(2, min(4, os.cpu_count() or 2))
    avg_time = benchmark.pedantic(
        _run_multiwalk, args=(workers,), rounds=1, iterations=1
    )
    print(f"\nmulti-walk CAP {ORDER} with {workers} workers: avg {avg_time:.3f}s "
          f"over {WALK_SETS} executions")
    assert avg_time > 0
