"""Regression harness: compiled walk engine vs the NumPy Adaptive Search loop.

Times three rungs of the same ladder on the Costas model:

* ``numpy`` — the Python/NumPy engine over the incremental count-table model
  (the PR-1 fast path; per-move kernels may still be C-accelerated);
* ``compiled`` — :class:`repro.core.cwalk.CompiledAdaptiveSearch`, where the
  whole inner loop (culprit selection, swap scoring, tabu, resets, restarts)
  runs inside one C call per check period;
* ``population`` — one compiled kernel call advancing ``W`` independent walks
  over batched ``(W, …)`` tables in a single process, reported as *aggregate*
  iterations/sec per core for each ``W``.

The two engines draw from different RNG streams, so this is a throughput
comparison (identical per-iteration semantics, not identical trajectories;
trajectory equivalence is pinned by ``tests/test_compiled_walk.py`` against
the line-for-line mirror).  Orders are chosen so runs exhaust the iteration
budget rather than solving early.

Results are merged into ``BENCH_engine.json`` under the ``"compiled_walk"``
key, preserving whatever ``bench_incremental_vs_reference.py`` wrote; CI runs
the ``--smoke`` preset.

Usage::

    PYTHONPATH=src python benchmarks/bench_compiled_walk.py
    PYTHONPATH=src python benchmarks/bench_compiled_walk.py \\
        --order 18 --iterations 40000 --require-speedup 5
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import _ckernels
from repro.core.cwalk import CompiledAdaptiveSearch
from repro.core.engine import AdaptiveSearch
from repro.core.params import ASParameters
from repro.models.costas import CostasProblem

DEFAULT_POPULATIONS = (1, 2, 4, 8)


def measure_numpy(order: int, iterations: int, seeds: int) -> dict:
    """Iterations/sec of the NumPy engine on the incremental Costas model."""
    engine = AdaptiveSearch()
    params = ASParameters.for_costas(order, max_iterations=iterations)
    total_iterations = 0
    total_time = 0.0
    solved = 0
    for seed in range(seeds):
        result = engine.solve(CostasProblem(order), seed=seed, params=params)
        total_iterations += result.iterations
        total_time += result.wall_time
        solved += int(result.solved)
    return {
        "iterations_per_second": total_iterations / total_time if total_time else 0.0,
        "total_iterations": total_iterations,
        "total_seconds": total_time,
        "solved_runs": solved,
        "runs": seeds,
    }


def measure_compiled(order: int, iterations: int, seeds: int) -> dict:
    """Iterations/sec of the compiled walk engine, one walk per run."""
    params = ASParameters.for_costas(order, max_iterations=iterations)
    solver = CompiledAdaptiveSearch(params)
    total_iterations = 0
    total_time = 0.0
    solved = 0
    for seed in range(seeds):
        result = solver.solve(CostasProblem(order), seed=seed)
        total_iterations += result.iterations
        total_time += result.wall_time
        solved += int(result.solved)
    return {
        "iterations_per_second": total_iterations / total_time if total_time else 0.0,
        "total_iterations": total_iterations,
        "total_seconds": total_time,
        "solved_runs": solved,
        "runs": seeds,
    }


def measure_population(order: int, iterations: int, seeds: int, width: int) -> dict:
    """Aggregate iterations/sec of ``width`` batched walks in one process."""
    params = ASParameters.for_costas(order, max_iterations=iterations)
    solver = CompiledAdaptiveSearch(params)
    total_iterations = 0
    total_time = 0.0
    solved = 0
    for seed in range(seeds):
        start = time.perf_counter()
        results = solver.solve_population(
            CostasProblem(order), seed=seed, population=width
        )
        total_time += time.perf_counter() - start
        total_iterations += sum(r.iterations for r in results)
        solved += int(any(r.solved for r in results))
    return {
        "population": width,
        "aggregate_iterations_per_second": (
            total_iterations / total_time if total_time else 0.0
        ),
        "total_iterations": total_iterations,
        "total_seconds": total_time,
        "solved_runs": solved,
        "runs": seeds,
    }


def run(order: int, iterations: int, seeds: int, populations) -> dict:
    numpy_path = measure_numpy(order, iterations, seeds)
    compiled_path = measure_compiled(order, iterations, seeds)
    numpy_rate = numpy_path["iterations_per_second"]
    compiled_rate = compiled_path["iterations_per_second"]
    population_rows = {}
    base_rate = None
    for width in populations:
        row = measure_population(order, iterations, seeds, width)
        rate = row["aggregate_iterations_per_second"]
        if base_rate is None:
            base_rate = rate
        row["scaling_vs_population_1"] = rate / base_rate if base_rate else 0.0
        population_rows[str(width)] = row
    return {
        "benchmark": "bench_compiled_walk",
        "problem": "costas (optimised model: quadratic ERR, Chang, dedicated reset)",
        "unit": "engine iterations per second (aggregate over walks for population rows)",
        "order": order,
        "iteration_budget_per_run": iterations,
        "runs_per_path": seeds,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "kernel_mode": _ckernels.mode(),
        },
        "results": {
            "numpy_engine": numpy_path,
            "compiled_walk": compiled_path,
            "speedup_vs_numpy_engine": (
                compiled_rate / numpy_rate if numpy_rate else float("inf")
            ),
            "population": population_rows,
        },
    }


def merge_report(out_path: Path, report: dict) -> dict:
    """Fold the report into ``BENCH_engine.json`` without clobbering siblings."""
    merged = {}
    if out_path.exists():
        try:
            merged = json.loads(out_path.read_text())
        except (OSError, ValueError):
            merged = {}
    if not isinstance(merged, dict):
        merged = {}
    merged["compiled_walk"] = report
    out_path.write_text(json.dumps(merged, indent=2) + "\n")
    return merged


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--order",
        type=int,
        default=18,
        help="Costas order to measure (default: %(default)s)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=40_000,
        help="engine iteration budget per walk (default: %(default)s)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=3,
        help="independent runs (seeds 0..k-1) per path (default: %(default)s)",
    )
    parser.add_argument(
        "--populations",
        default=",".join(str(w) for w in DEFAULT_POPULATIONS),
        help="comma-separated population widths (default: %(default)s)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_engine.json",
        help="JSON file to merge the report into (default: %(default)s)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke preset: order 12, tiny budgets, populations 1,4",
    )
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless compiled single-walk reaches X-fold speedup",
    )
    args = parser.parse_args(argv)

    if _ckernels.load() is None:
        print("SKIP: C kernels unavailable, compiled walk engine cannot run")
        return 0

    if args.smoke:
        order, iterations, seeds, populations = 12, 2_000, 1, (1, 4)
    else:
        order, iterations, seeds = args.order, args.iterations, args.seeds
        try:
            populations = tuple(
                int(tok) for tok in args.populations.split(",") if tok.strip()
            )
        except ValueError:
            parser.error(
                f"--populations must be comma-separated integers, "
                f"got {args.populations!r}"
            )
        if not populations or any(w < 1 for w in populations):
            parser.error(f"--populations needs widths >= 1, got {args.populations!r}")

    report = run(order, iterations, seeds, populations)
    merge_report(Path(args.out), report)

    results = report["results"]
    speedup = results["speedup_vs_numpy_engine"]
    print(f"{'path':>16s} {'it/s':>12s} {'speedup':>9s}")
    print(
        f"{'numpy engine':>16s} "
        f"{results['numpy_engine']['iterations_per_second']:12.0f} {'1.00x':>9s}"
    )
    print(
        f"{'compiled walk':>16s} "
        f"{results['compiled_walk']['iterations_per_second']:12.0f} "
        f"{speedup:8.2f}x"
    )
    print(f"{'W':>4s} {'aggregate it/s':>16s} {'scaling':>9s}")
    for width in populations:
        row = results["population"][str(width)]
        print(
            f"{width:4d} {row['aggregate_iterations_per_second']:16.0f} "
            f"{row['scaling_vs_population_1']:8.2f}x"
        )
    print(f"merged into {args.out} (kernel_mode={report['machine']['kernel_mode']})")
    if args.require_speedup is not None and speedup < args.require_speedup:
        print(
            f"FAIL: compiled walk below the required "
            f"{args.require_speedup:.1f}x speedup over the numpy engine",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
