"""Benchmarks for the Section IV-B ablations (one per model refinement).

Each benchmark regenerates one ablation table.  The assertions are
deliberately soft for the refinements whose effect the paper itself reports as
modest (17% / 30%): at reproduction scale and run counts those differences are
within noise, so the benchmark only requires that every variant still solves
its instances; EXPERIMENTS.md records the measured ratios.  The dedicated
reset — the paper's 3.7x refinement — must show a clear win.
"""

from __future__ import annotations

import pytest
from conftest import run_experiment_once

from repro.experiments.ablations import run_ablation


def _driver(name):
    def run(scale, runner):
        return run_ablation(name, scale, runner)

    run.__name__ = f"run_ablation_{name}"
    return run


def _all_variants_solve(result):
    for row in result.rows:
        assert row["solved"] == row["runs"], row


def test_ablation_err_weight(benchmark, scale, runner):
    result = run_experiment_once(benchmark, _driver("err_weight"), scale, runner)
    _all_variants_solve(result)


def test_ablation_chang_half_triangle(benchmark, scale, runner):
    result = run_experiment_once(benchmark, _driver("chang"), scale, runner)
    _all_variants_solve(result)


def test_ablation_dedicated_reset(benchmark, scale, runner):
    result = run_experiment_once(benchmark, _driver("reset"), scale, runner)
    _all_variants_solve(result)
    # The dedicated reset is the paper's big-ticket refinement (~3.7x); require
    # it to be at least as good as the generic reset in average iterations on
    # the largest ablation order.
    largest = max(row["order"] for row in result.rows)
    by_variant = {
        row["variant"]: row["avg_iterations"]
        for row in result.rows
        if row["order"] == largest
    }
    assert by_variant["dedicated-reset"] <= by_variant["generic-reset"] * 1.5


def test_ablation_plateau_probability(benchmark, scale, runner):
    result = run_experiment_once(benchmark, _driver("plateau"), scale, runner)
    # Every plateau setting should still solve everything at these orders.
    for row in result.rows:
        assert row["solved"] == row["runs"]


def test_ablation_local_min_escape_probability(benchmark, scale, runner):
    result = run_experiment_once(benchmark, _driver("local_min"), scale, runner)
    largest = max(row["order"] for row in result.rows)
    by_variant = {
        row["variant"]: row["avg_iterations"]
        for row in result.rows
        if row["order"] == largest
    }
    # Allowing uphill escapes (p > 0) must beat the pure freeze-and-reset
    # policy (p = 0), which is the engine-level finding documented in DESIGN.md.
    best_nonzero = min(v for k, v in by_variant.items() if not k.endswith("0.00"))
    assert best_nonzero <= by_variant["uphill=0.00"]
