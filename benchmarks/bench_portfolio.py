"""Portfolio benchmark: pure-AS multi-walk vs heterogeneous portfolios.

Races the multi-walk solver in two configurations on hard Costas orders:

* **pure** — every walk runs Adaptive Search with an independent seed (the
  paper's scheme);
* **mixed** — walks are assigned a heterogeneous portfolio round-robin
  (``adaptive+tabu`` by default), first solution wins.

For each configuration the benchmark reports the time-to-target distribution
(mean/std/min/max over repetitions) plus the win count per strategy, which is
the observable the strategy layer exists for: on instances where no single
algorithm dominates, a mixed portfolio hedges the per-walk variance of the
time-to-target race.

A single-walk Adaptive Search throughput probe (same protocol as
``bench_incremental_vs_reference.py``) is included so the strategy-layer
refactor can be checked against ``BENCH_engine.json`` for hot-path
regressions: ``--require-throughput X`` fails the run if the engine drops
below ``X`` iterations/sec at the probe order.

Results are written to ``BENCH_portfolio.json``; CI runs ``--smoke``.

Usage::

    PYTHONPATH=src python benchmarks/bench_portfolio.py
    PYTHONPATH=src python benchmarks/bench_portfolio.py \\
        --orders 13,14 --repeats 10 --walks 4 --portfolio adaptive+tabu
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.engine import AdaptiveSearch
from repro.core.params import ASParameters
from repro.experiments.base import costas_factory
from repro.models.costas import CostasProblem
from repro.parallel.multiwalk import MultiWalkSolver
from repro.solvers import portfolio_label, resolve_portfolio

DEFAULT_ORDERS = (13, 14)


def _summary(times, runs):
    if not times:
        return {"runs": runs, "mean": None, "std": None, "min": None, "max": None}
    return {
        "runs": runs,
        "mean": statistics.mean(times),
        "std": statistics.pstdev(times) if len(times) > 1 else 0.0,
        "min": min(times),
        "max": max(times),
    }


def race(order, solver_spec, *, walks, repeats, max_time, seed_base):
    """Time-to-target distribution of one multi-walk configuration.

    Only solved runs enter the time-to-target statistics — a timed-out run
    contributes to ``timeout_runs`` instead of censoring the distribution at
    ``max_time`` (which would skew any pure-vs-mixed comparison where the
    success rates differ).
    """
    times = []
    wins = {}
    solved = 0
    for rep in range(repeats):
        solver = MultiWalkSolver(
            costas_factory(order),
            ASParameters.for_costas(order),
            solver=solver_spec,
            n_workers=walks,
            seed_root=seed_base + rep,
        )
        outcome = solver.solve(max_time=max_time)
        if outcome.solved:
            solved += 1
            times.append(outcome.wall_time)
            winner = outcome.best.solver
            wins[winner] = wins.get(winner, 0) + 1
    return {
        "portfolio": portfolio_label(resolve_portfolio(solver_spec)),
        "walks": walks,
        "solved_runs": solved,
        "timeout_runs": repeats - solved,
        "wins_by_solver": wins,
        "time_to_target": _summary(times, repeats),
    }


def throughput_probe(order, iterations, seeds=2):
    """Single-walk AS iterations/sec (comparable to BENCH_engine.json)."""
    engine = AdaptiveSearch()
    params = ASParameters.for_costas(order, max_iterations=iterations)
    total_iterations = 0
    total_time = 0.0
    for seed in range(seeds):
        result = engine.solve(CostasProblem(order), seed=seed, params=params)
        total_iterations += result.iterations
        total_time += result.wall_time
    return {
        "order": order,
        "iterations_per_second": total_iterations / total_time if total_time else 0.0,
        "total_iterations": total_iterations,
        "total_seconds": total_time,
    }


def run(orders, *, walks, repeats, max_time, portfolio):
    results = {}
    for order in orders:
        pure = race(
            order, "adaptive", walks=walks, repeats=repeats,
            max_time=max_time, seed_base=1000 + order,
        )
        mixed = race(
            order, portfolio, walks=walks, repeats=repeats,
            max_time=max_time, seed_base=1000 + order,
        )
        pure_mean = pure["time_to_target"]["mean"]
        mixed_mean = mixed["time_to_target"]["mean"]
        pure_std = pure["time_to_target"]["std"]
        mixed_std = mixed["time_to_target"]["std"]
        results[str(order)] = {
            "pure": pure,
            "mixed": mixed,
            "mixed_over_pure_mean": (
                mixed_mean / pure_mean if pure_mean and mixed_mean is not None else None
            ),
            "mixed_over_pure_std": (
                mixed_std / pure_std if pure_std and mixed_std is not None else None
            ),
        }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--orders", default=",".join(str(n) for n in DEFAULT_ORDERS),
        help="comma-separated Costas orders (default: %(default)s)",
    )
    parser.add_argument(
        "--walks", type=int, default=4, help="worker processes per race"
    )
    parser.add_argument(
        "--repeats", type=int, default=8, help="repetitions per configuration"
    )
    parser.add_argument(
        "--max-time", type=float, default=120.0, help="per-walk budget (s)"
    )
    parser.add_argument(
        "--portfolio", default="adaptive+tabu",
        help="mixed configuration raced against pure AS (default: %(default)s)",
    )
    parser.add_argument(
        "--throughput-order", type=int, default=18,
        help="order of the single-walk throughput probe",
    )
    parser.add_argument(
        "--throughput-iterations", type=int, default=4000,
        help="iteration budget of the throughput probe",
    )
    parser.add_argument(
        "--require-throughput", type=float, default=None, metavar="X",
        help="exit non-zero if the single-walk probe is below X iterations/sec",
    )
    parser.add_argument(
        "--out", default="BENCH_portfolio.json", help="output JSON path"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI preset: order 10, 2 walks, 2 repeats; asserts solutions",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        orders = (10,)
        walks, repeats, max_time = 2, 2, 60.0
        throughput_iterations = 800
    else:
        try:
            orders = tuple(int(tok) for tok in args.orders.split(",") if tok.strip())
        except ValueError:
            parser.error(f"--orders must be comma-separated integers, got {args.orders!r}")
        if not orders or any(n < 3 for n in orders):
            parser.error(f"--orders needs Costas orders >= 3, got {args.orders!r}")
        walks, repeats, max_time = args.walks, args.repeats, args.max_time
        throughput_iterations = args.throughput_iterations

    results = run(
        orders, walks=walks, repeats=repeats, max_time=max_time,
        portfolio=args.portfolio,
    )
    probe = throughput_probe(args.throughput_order, throughput_iterations)

    report = {
        "benchmark": "bench_portfolio",
        "unit": "seconds time-to-target (multi-walk), iterations/sec (probe)",
        "walks": walks,
        "repeats": repeats,
        "portfolio": args.portfolio,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "results": results,
        "single_walk_throughput": probe,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    header = f"{'n':>4s} {'config':>16s} {'solved':>7s} {'mean s':>9s} {'std s':>9s} {'min s':>9s} {'max s':>9s}"
    print(header)
    for order in orders:
        cell = report["results"][str(order)]
        for label in ("pure", "mixed"):
            ttt = cell[label]["time_to_target"]
            stats = (
                f"{ttt['mean']:9.3f} {ttt['std']:9.3f} {ttt['min']:9.3f} {ttt['max']:9.3f}"
                if ttt["mean"] is not None
                else f"{'—':>9s} {'—':>9s} {'—':>9s} {'—':>9s}"
            )
            print(
                f"{order:4d} {cell[label]['portfolio']:>16s} "
                f"{cell[label]['solved_runs']:3d}/{ttt['runs']:<3d} {stats}"
            )
    print(
        f"single-walk probe: n={probe['order']} "
        f"{probe['iterations_per_second']:.0f} it/s"
    )
    print(f"wrote {args.out}")

    if args.smoke:
        for order in orders:
            cell = report["results"][str(order)]
            for label in ("pure", "mixed"):
                if cell[label]["solved_runs"] == 0:
                    print(f"FAIL: {label} solved nothing at n={order}", file=sys.stderr)
                    return 1
        mixed_wins = report["results"][str(orders[0])]["mixed"]["wins_by_solver"]
        print(f"smoke OK: mixed wins by solver = {mixed_wins}")
    if (
        args.require_throughput is not None
        and probe["iterations_per_second"] < args.require_throughput
    ):
        print(
            f"FAIL: single-walk throughput {probe['iterations_per_second']:.0f} it/s "
            f"below required {args.require_throughput:.0f}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
