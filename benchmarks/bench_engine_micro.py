"""Micro-benchmarks of the engine's hot paths.

These are conventional pytest-benchmark measurements (calibrated rounds): the
per-iteration cost of the Costas model's vectorised candidate evaluation, the
full cost function, the dedicated reset, and a complete small solve.  They
give the repository a regression guard on raw engine speed, which everything
else (pool collection, tables, examples) depends on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import AdaptiveSearch
from repro.core.params import ASParameters
from repro.models.costas import CostasProblem

ORDER = 16


@pytest.fixture
def problem() -> CostasProblem:
    prob = CostasProblem(ORDER)
    prob.set_configuration(np.random.default_rng(0).permutation(ORDER))
    return prob


def test_swap_deltas_vectorised(benchmark, problem):
    benchmark(problem.swap_deltas, ORDER // 2)


def test_variable_errors(benchmark, problem):
    benchmark(problem.variable_errors)


def test_full_cost_evaluation(benchmark, problem):
    config = problem.configuration()
    benchmark(problem.set_configuration, config)


def test_dedicated_reset(benchmark, problem):
    rng = np.random.default_rng(1)
    benchmark(problem.custom_reset, rng)


def test_solve_costas_order_10(benchmark):
    params = ASParameters.for_costas(10)

    def run():
        result = AdaptiveSearch().solve(CostasProblem(10), seed=5, params=params)
        assert result.solved
        return result

    benchmark.pedantic(run, rounds=3, iterations=1)
