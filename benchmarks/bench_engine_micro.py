"""Micro-benchmarks of the engine's hot paths.

These are conventional pytest-benchmark measurements (calibrated rounds): the
per-iteration cost of the Costas model's vectorised candidate evaluation, the
full cost function, the dedicated reset, and a complete small solve.  They
give the repository a regression guard on raw engine speed, which everything
else (pool collection, tables, examples) depends on.

Run directly with ``--smoke`` for a pytest-free CI sanity pass that times one
round of every hot path — including a compiled-walk population solve — and
fails on any crash::

    PYTHONPATH=src python benchmarks/bench_engine_micro.py --smoke
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import AdaptiveSearch
from repro.core.params import ASParameters
from repro.models.costas import CostasProblem

ORDER = 16


@pytest.fixture
def problem() -> CostasProblem:
    prob = CostasProblem(ORDER)
    prob.set_configuration(np.random.default_rng(0).permutation(ORDER))
    return prob


def test_swap_deltas_vectorised(benchmark, problem):
    benchmark(problem.swap_deltas, ORDER // 2)


def test_variable_errors(benchmark, problem):
    benchmark(problem.variable_errors)


def test_full_cost_evaluation(benchmark, problem):
    config = problem.configuration()
    benchmark(problem.set_configuration, config)


def test_dedicated_reset(benchmark, problem):
    rng = np.random.default_rng(1)
    benchmark(problem.custom_reset, rng)


def test_solve_costas_order_10(benchmark):
    params = ASParameters.for_costas(10)

    def run():
        result = AdaptiveSearch().solve(CostasProblem(10), seed=5, params=params)
        assert result.solved
        return result

    benchmark.pedantic(run, rounds=3, iterations=1)


# --------------------------------------------------------------------- smoke
def _smoke() -> int:
    """One timed round of each hot path, no pytest-benchmark machinery."""
    import time

    from repro.core import _ckernels

    prob = CostasProblem(ORDER)
    prob.set_configuration(np.random.default_rng(0).permutation(ORDER))
    rng = np.random.default_rng(1)
    checks = [
        ("swap_deltas", lambda: prob.swap_deltas(ORDER // 2)),
        ("variable_errors", lambda: prob.variable_errors()),
        ("full_cost_evaluation", lambda: prob.set_configuration(prob.configuration())),
        ("dedicated_reset", lambda: prob.custom_reset(rng)),
        (
            "solve_costas_order_10",
            lambda: AdaptiveSearch().solve(
                CostasProblem(10), seed=5, params=ASParameters.for_costas(10)
            ),
        ),
    ]
    if _ckernels.load() is not None:
        from repro.core.cwalk import CompiledAdaptiveSearch

        compiled = CompiledAdaptiveSearch(
            ASParameters.for_costas(12, max_iterations=50_000)
        )
        checks.append(
            ("compiled_walk_solve", lambda: compiled.solve(CostasProblem(12), seed=5))
        )
        checks.append(
            (
                "compiled_walk_population_4",
                lambda: compiled.solve_population(
                    CostasProblem(12), seed=5, population=4
                ),
            )
        )
    else:
        print("compiled walk checks skipped (C kernels unavailable)")
    for name, check in checks:
        start = time.perf_counter()
        check()
        elapsed = time.perf_counter() - start
        print(f"{name:>26s} {elapsed * 1e3:10.2f} ms")
    print(f"kernel mode: {_ckernels.mode()}")
    return 0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run one timed round of each hot path and exit (CI sanity pass)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return _smoke()
    parser.error("this module is a pytest-benchmark suite; use --smoke to run directly")


if __name__ == "__main__":
    raise SystemExit(main())
