"""Service vs naive per-request solving: throughput and latency percentiles.

Replays the same mixed request workload through two fulfilment paths:

* **service** — one long-lived :class:`~repro.service.api.SolverService`
  (persistent solution store with symmetry-class keying, coalescing
  scheduler, warm worker pool);
* **naive** — what the repo did before the service layer: every request
  constructs a fresh :class:`~repro.parallel.multiwalk.MultiWalkSolver` and
  solves from scratch (per-request process spawn included, one walk, same
  engine underneath).

The workload mixes the four request classes the service is built for:

* ``repeated`` — the same order requested over and over (store hits after
  the first);
* ``symmetry`` — requests answered by a *variant* of a stored solution
  (one stored canonical array serves its whole dihedral class);
* ``constructible`` — orders with a Welch/Lempel/Golomb construction
  (answered algebraically, never searched);
* ``fresh`` — previously unseen orders that genuinely need search.

Results go to ``BENCH_service.json``.  The PR's acceptance criterion is the
``repeated_symmetry`` speedup: the store + coalescing path must be >= 10x the
naive path on the repeated/symmetry-equivalent classes.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
    PYTHONPATH=src python benchmarks/bench_service_throughput.py \\
        --quick --out bench-smoke.json --require-speedup 10
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.params import ASParameters
from repro.experiments.base import costas_factory
from repro.parallel.multiwalk import MultiWalkSolver
from repro.service.api import ServiceConfig, SolverService

# (class, order) pairs; orders chosen so "fresh"/"repeated" need real search
# (no construction exists: 8+1=9, 8+2=10; 13 is constructible -> only used in
# the constructible class) while staying small enough for the naive rival.
_REPEATED_ORDER = 9
_SYMMETRY_ORDER = 10
_CONSTRUCTIBLE_ORDERS = (11, 12, 13)
_FRESH_ORDERS = (8, 14, 15)


def build_workload(repeats: int) -> List[Tuple[str, int]]:
    """The mixed request stream, deterministically interleaved."""
    workload: List[Tuple[str, int]] = []
    for i in range(repeats):
        workload.append(("repeated", _REPEATED_ORDER))
        workload.append(("symmetry", _SYMMETRY_ORDER))
        workload.append(("constructible", _CONSTRUCTIBLE_ORDERS[i % len(_CONSTRUCTIBLE_ORDERS)]))
        if i < len(_FRESH_ORDERS):
            workload.append(("fresh", _FRESH_ORDERS[i]))
    return workload


def _percentiles(latencies: Sequence[float]) -> Dict[str, float]:
    arr = np.asarray(latencies, dtype=float) * 1000.0  # ms
    return {
        "p50_ms": float(np.percentile(arr, 50)),
        "p90_ms": float(np.percentile(arr, 90)),
        "p99_ms": float(np.percentile(arr, 99)),
        "max_ms": float(arr.max()),
    }


def _summarise(
    per_class: Dict[str, List[float]], wall: float, label: str
) -> Dict[str, object]:
    all_latencies = [lat for lats in per_class.values() for lat in lats]
    total = len(all_latencies)
    return {
        "path": label,
        "requests": total,
        "wall_seconds": wall,
        "requests_per_second": total / wall if wall else 0.0,
        "overall": _percentiles(all_latencies),
        "classes": {
            cls: {
                "requests": len(lats),
                "requests_per_second": len(lats) / sum(lats) if sum(lats) else 0.0,
                **_percentiles(lats),
            }
            for cls, lats in per_class.items()
        },
    }


def run_service(workload, n_workers: int, max_time: float, store_path: str):
    """All requests through one warm SolverService (sequential client)."""
    per_class: Dict[str, List[float]] = {}
    config = ServiceConfig(
        store_path=store_path,
        n_workers=n_workers,
        default_max_time=max_time,
    )
    with SolverService(config) as service:
        # Pre-seed the symmetry class exactly once so the "symmetry" stream
        # measures variant-expanding *reads*, mirroring a second tenant whose
        # requests land in an already-stored equivalence class.
        seed_response = service.submit(_SYMMETRY_ORDER).result(timeout=600)
        assert seed_response.solved
        start = time.perf_counter()
        for cls, order in workload:
            t0 = time.perf_counter()
            response = service.submit(order).result(timeout=600)
            if not response.solved:
                raise RuntimeError(f"service failed to solve order {order}")
            per_class.setdefault(cls, []).append(time.perf_counter() - t0)
        wall = time.perf_counter() - start
        stats = service.stats()
    summary = _summarise(per_class, wall, "service")
    summary["service_stats"] = {
        "store": stats["store"],
        "scheduler": stats["scheduler"],
        "pool": stats["pool"],
    }
    return summary


def run_naive(workload, n_workers: int, max_time: float):
    """The pre-service behaviour: a fresh per-request MultiWalkSolver.

    Same process budget as the service (*n_workers* walks), but paid per
    request: every request spawns fresh worker processes and re-solves from
    scratch — exactly what ``repro parallel`` did before the service layer.
    """
    per_class: Dict[str, List[float]] = {}
    start = time.perf_counter()
    for index, (cls, order) in enumerate(workload):
        t0 = time.perf_counter()
        solver = MultiWalkSolver(
            costas_factory(order),
            ASParameters.for_costas(order),
            n_workers=n_workers,
            seed_root=100_000 + index,
        )
        outcome = solver.solve(max_time=max_time)
        if not outcome.solved:
            raise RuntimeError(f"naive path failed to solve order {order}")
        per_class.setdefault(cls, []).append(time.perf_counter() - t0)
    wall = time.perf_counter() - start
    return _summarise(per_class, wall, "naive")


def _class_rate(summary: Dict[str, object], classes: Sequence[str]) -> float:
    total_requests = 0
    total_seconds = 0.0
    for cls in classes:
        cell = summary["classes"].get(cls)
        if cell is None:
            continue
        total_requests += cell["requests"]
        total_seconds += cell["requests"] / cell["requests_per_second"] if cell["requests_per_second"] else 0.0
    return total_requests / total_seconds if total_seconds else 0.0


def run(repeats: int, n_workers: int, max_time: float, store_path: str) -> dict:
    workload = build_workload(repeats)
    naive = run_naive(workload, n_workers, max_time)
    service = run_service(workload, n_workers, max_time, store_path)
    hot = ("repeated", "symmetry")
    service_hot = _class_rate(service, hot)
    naive_hot = _class_rate(naive, hot)
    return {
        "benchmark": "bench_service_throughput",
        "unit": "requests per second (latency percentiles in ms)",
        "workload": {
            "requests": len(workload),
            "repeats": repeats,
            "classes": {
                "repeated": _REPEATED_ORDER,
                "symmetry": _SYMMETRY_ORDER,
                "constructible": list(_CONSTRUCTIBLE_ORDERS),
                "fresh": list(_FRESH_ORDERS),
            },
        },
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "service": service,
        "naive": naive,
        "speedup": {
            "overall": (
                service["requests_per_second"] / naive["requests_per_second"]
                if naive["requests_per_second"]
                else float("inf")
            ),
            "repeated_symmetry": (
                service_hot / naive_hot if naive_hot else float("inf")
            ),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats",
        type=int,
        default=25,
        help="rounds of the mixed workload (default: %(default)s)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="service worker processes (default: %(default)s)",
    )
    parser.add_argument(
        "--max-time",
        type=float,
        default=120.0,
        help="per-walk budget in seconds (default: %(default)s)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_service.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--store",
        default=":memory:",
        help="service store path (default: ephemeral %(default)s)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke preset: 6 rounds",
    )
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless the repeated/symmetry speedup reaches X",
    )
    args = parser.parse_args(argv)
    repeats = 6 if args.quick else args.repeats

    report = run(repeats, args.workers, args.max_time, args.store)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    for label in ("naive", "service"):
        cell = report[label]
        print(
            f"{label:8s} {cell['requests']:4d} requests  "
            f"{cell['requests_per_second']:10.1f} req/s  "
            f"p50={cell['overall']['p50_ms']:8.2f}ms  "
            f"p99={cell['overall']['p99_ms']:8.2f}ms"
        )
    hot = report["speedup"]["repeated_symmetry"]
    print(
        f"speedup: overall {report['speedup']['overall']:.1f}x, "
        f"repeated/symmetry {hot:.1f}x"
    )
    print(f"wrote {args.out}")
    if args.require_speedup is not None and hot < args.require_speedup:
        print(
            f"FAIL: repeated/symmetry speedup {hot:.1f}x is below the "
            f"required {args.require_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
