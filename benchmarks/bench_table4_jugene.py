"""Benchmark regenerating Table IV — simulated JUGENE execution times (512–8,192 cores)."""

from __future__ import annotations

from conftest import run_experiment_once

from repro.experiments.table4 import run_table4


def test_table4_jugene_parallel_times(benchmark, scale, runner):
    result = run_experiment_once(benchmark, run_table4, scale, runner)
    stats = result.metadata["statistics"]
    cores = result.metadata["cores"]
    for order in result.metadata["orders"]:
        avg_times = [stats[order][str(c)]["avg"] for c in cores]
        # At reproduction scale (small instances), the 512-8192 core range is
        # deep in the saturation regime (see EXPERIMENTS.md): the expected time
        # is dominated by the distribution's shift, so we only require that
        # adding cores never makes things noticeably worse and that the
        # best-case column stays far below the sequential average.
        assert avg_times[-1] <= avg_times[0] * 1.10
        assert stats[order][str(cores[-1])]["max"] <= stats[order][str(cores[0])]["max"] * 1.25
