"""Benchmark regenerating Table I — sequential Adaptive Search evaluation."""

from __future__ import annotations

from conftest import run_experiment_once

from repro.experiments.table1 import run_table1


def test_table1_sequential_evaluation(benchmark, scale, runner):
    result = run_experiment_once(benchmark, run_table1, scale, runner)
    # Sanity of the paper's two headline observations at this scale:
    # (1) solving effort grows steeply with the order,
    iters = [row["iterations_avg"] for row in result.rows]
    assert iters == sorted(iters)
    assert iters[-1] > 2 * iters[0]
    # (2) the best run is far faster than the average run.
    assert all(row["ratio_avg_over_min"] >= 2 for row in result.rows[1:])
