"""Benchmark regenerating Table V — simulated Grid'5000 (Suno / Helios) execution times."""

from __future__ import annotations

from conftest import run_experiment_once

from repro.experiments.table5 import run_table5


def test_table5_grid5000_parallel_times(benchmark, scale, runner):
    result = run_experiment_once(benchmark, run_table5, scale, runner)
    for cluster_key in ("suno", "helios"):
        meta = result.metadata[cluster_key]
        stats = meta["statistics"]
        cores = meta["cores"]
        for order in meta["orders"]:
            avg_times = [stats[order][str(c)]["avg"] for c in cores]
            assert avg_times[-1] < avg_times[0]
    # Helios (2.2 GHz) should be no faster than Suno (2.4 GHz) on the
    # sequential column, mirroring the paper's slower-cluster observation.
    suno = result.metadata["suno"]["statistics"]
    helios = result.metadata["helios"]["statistics"]
    common_orders = set(suno) & set(helios)
    for order in common_orders:
        assert helios[order]["1"]["avg"] >= suno[order]["1"]["avg"]
