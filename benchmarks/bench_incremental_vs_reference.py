"""Regression harness: incremental vs full-recompute Costas evaluation.

Runs the Adaptive Search engine on the same instances through both code
paths — :class:`repro.models.costas.CostasProblem` (incremental count tables,
optionally C-accelerated) and :class:`~repro.models.costas.ReferenceCostasProblem`
(the original full-recompute implementation) — and reports iterations/sec per
order.  Both paths produce *bit-identical trajectories* for a given seed
(pinned by ``tests/test_incremental_equivalence.py``), so the ratio is a pure
like-for-like timing of the evaluation subsystem.

Results are written to ``BENCH_engine.json`` (see ``--out``) so perf
regressions show up as a diff; CI runs the ``--quick`` preset as a smoke.

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental_vs_reference.py
    PYTHONPATH=src python benchmarks/bench_incremental_vs_reference.py \\
        --orders 18 --iterations 2000 --seeds 2 --require-speedup 10
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import _ckernels
from repro.core.engine import AdaptiveSearch
from repro.core.params import ASParameters
from repro.models.costas import CostasProblem, ReferenceCostasProblem

DEFAULT_ORDERS = (10, 14, 18, 22)


def measure_path(
    factory, orders, iterations: int, seeds: int
) -> dict:
    """Iterations/sec of one code path per order (identical seeds across paths)."""
    engine = AdaptiveSearch()
    out = {}
    for n in orders:
        params = ASParameters.for_costas(n, max_iterations=iterations)
        total_iterations = 0
        total_time = 0.0
        solved = 0
        for seed in range(seeds):
            result = engine.solve(factory(n), seed=seed, params=params)
            total_iterations += result.iterations
            total_time += result.wall_time
            solved += int(result.solved)
        out[n] = {
            "iterations_per_second": total_iterations / total_time if total_time else 0.0,
            "total_iterations": total_iterations,
            "total_seconds": total_time,
            "solved_runs": solved,
            "runs": seeds,
        }
    return out


def run(orders, iterations: int, seeds: int) -> dict:
    reference = measure_path(
        lambda n: ReferenceCostasProblem(n), orders, iterations, seeds
    )
    incremental = measure_path(lambda n: CostasProblem(n), orders, iterations, seeds)
    results = {}
    for n in orders:
        ref_rate = reference[n]["iterations_per_second"]
        inc_rate = incremental[n]["iterations_per_second"]
        results[str(n)] = {
            "reference": reference[n],
            "incremental": incremental[n],
            "speedup": inc_rate / ref_rate if ref_rate else float("inf"),
        }
    return {
        "benchmark": "bench_incremental_vs_reference",
        "problem": "costas (optimised model: quadratic ERR, Chang, dedicated reset)",
        "unit": "engine iterations per second",
        "iteration_budget_per_run": iterations,
        "runs_per_order": seeds,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "ckernels": _ckernels.available(),
        },
        "results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--orders",
        default=",".join(str(n) for n in DEFAULT_ORDERS),
        help="comma-separated Costas orders to measure (default: %(default)s)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=4000,
        help="engine iteration budget per run (default: %(default)s)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=4,
        help="independent runs (seeds 0..k-1) per order and path (default: %(default)s)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_engine.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke preset: orders 10,14, small budgets, 1 seed",
    )
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless every measured order reaches X-fold speedup",
    )
    args = parser.parse_args(argv)

    if args.quick:
        orders = (10, 14)
        iterations = 600
        seeds = 1
    else:
        try:
            orders = tuple(int(tok) for tok in args.orders.split(",") if tok.strip())
        except ValueError:
            parser.error(f"--orders must be comma-separated integers, got {args.orders!r}")
        if not orders or any(n < 3 for n in orders):
            parser.error(f"--orders needs Costas orders >= 3, got {args.orders!r}")
        iterations = args.iterations
        seeds = args.seeds

    report = run(orders, iterations, seeds)
    out_path = Path(args.out)
    if out_path.exists():
        # Preserve sections written by other harnesses (e.g. "compiled_walk"
        # from bench_compiled_walk.py) instead of clobbering the whole file.
        try:
            existing = json.loads(out_path.read_text())
        except (OSError, ValueError):
            existing = None
        if isinstance(existing, dict):
            for key, value in existing.items():
                if key not in report:
                    report[key] = value
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    print(f"{'n':>4s} {'reference it/s':>16s} {'incremental it/s':>18s} {'speedup':>9s}")
    failed = False
    for n in orders:
        cell = report["results"][str(n)]
        speedup = cell["speedup"]
        print(
            f"{n:4d} {cell['reference']['iterations_per_second']:16.0f} "
            f"{cell['incremental']['iterations_per_second']:18.0f} {speedup:8.2f}x"
        )
        if args.require_speedup is not None and speedup < args.require_speedup:
            failed = True
    print(f"wrote {args.out} (ckernels={report['machine']['ckernels']})")
    if failed:
        print(
            f"FAIL: at least one order below the required "
            f"{args.require_speedup:.1f}x speedup",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
