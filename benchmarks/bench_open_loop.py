"""Open-loop QoS benchmark: does interactive p99 survive a background flood?

Closed-loop load generators (N clients in a request/response loop) slow down
exactly when the server does, hiding tail latency — the *coordinated
omission* trap.  This harness is **open-loop**: request start times are drawn
from a Poisson process up front and every request fires at its scheduled
instant regardless of how the previous ones are doing, so queueing delay
lands in the measurement instead of in the generator.

Two phases against one lane-enabled server (async front-end, subprocess):

1. **Unloaded baseline** — interactive-lane traffic alone at a modest
   arrival rate.  Its p99 is the reference value.
2. **Flood** — the *same* interactive workload while a background tenant
   floods the background lane at >= 2x the server's worker capacity.

Every request is a real search (store and construction tiers disabled) with
a fixed ``max_time``, so worker capacity is known: ``slots / max_time``
jobs/s.  A tiny per-request ``max_time`` jitter makes every instance key
unique, so coalescing cannot quietly turn the flood into one job.  The order
mix is heavy-tailed (Zipf over a band of hard orders) to mimic a skewed
production mix.

Acceptance (written to ``BENCH_qos.json``):

* interactive p99 under flood <= 2x its unloaded value,
* shed/rejected responses confined to the background lane (the interactive
  lane sees neither client-side 503s nor server-side shed counters),
* the background flood really was refused work (sheds or 503s observed).

The arrival schedule is deterministic per ``--seed`` and can be written out
(``--trace-out``) and replayed bit-identically (``--trace-in``), so a tail
regression seen once can be re-run against a patched server.

Usage::

    PYTHONPATH=src python benchmarks/bench_open_loop.py          # full run
    PYTHONPATH=src python benchmarks/bench_open_loop.py --smoke  # CI-sized
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import random
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Server subprocess: lane-enabled async front-end on an ephemeral port.
_SERVER_MAIN = """
import sys
from repro.service.api import ServiceConfig
from repro.service.http_async import AsyncServiceHTTPServer

config = ServiceConfig(
    store_path=sys.argv[1],
    n_workers=int(sys.argv[2]),
    max_queue_depth=int(sys.argv[3]),
    default_max_time=120.0,
    lanes="default",
)
server = AsyncServiceHTTPServer(("127.0.0.1", 0), config=config, verbose=False)
print(server.port, flush=True)
server.serve_forever()
"""

#: Heavy-tailed order mix: hard-enough Costas orders that a bounded-time
#: walk treats as "run until max_time"; Zipf-ish weights 1/k^1.5.
_ORDERS = [19, 20, 21, 22, 23, 24, 25, 26]

_SLO_MS = {"interactive": 1000.0, "batch": 4000.0, "background": float("inf")}


# ------------------------------------------------------------------ generator
def build_trace(
    *,
    seed: int,
    duration: float,
    interactive_rate: float,
    background_rate: float,
    max_time: float,
) -> List[Dict[str, Any]]:
    """Poisson arrival schedule for one phase, deterministic per seed.

    Each event: ``{"t": offset_s, "order": n, "lane": ..., "tenant": ...,
    "max_time": jittered}``.  The jitter (micro-seconds, unique per event)
    defeats request coalescing without changing the actual budget.
    """
    rng = random.Random(seed)
    weights = [1.0 / (k + 1) ** 1.5 for k in range(len(_ORDERS))]
    events: List[Dict[str, Any]] = []
    serial = 0
    for lane, tenant, rate in (
        ("interactive", "frontend", interactive_rate),
        ("background", "flood", background_rate),
    ):
        if rate <= 0:
            continue
        t = rng.expovariate(rate)
        while t < duration:
            serial += 1
            events.append(
                {
                    "t": round(t, 6),
                    "order": rng.choices(_ORDERS, weights)[0],
                    "lane": lane,
                    "tenant": tenant,
                    "max_time": round(max_time + serial * 1e-6, 6),
                }
            )
            t += rng.expovariate(rate)
    events.sort(key=lambda e: e["t"])
    return events


# --------------------------------------------------------------------- server
class LaneServer:
    """One lane-enabled server subprocess plus minimal client plumbing."""

    def __init__(self, n_workers: int, queue_depth: int) -> None:
        self._db = tempfile.mktemp(prefix="bench-qos-", suffix=".db")
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self._proc = subprocess.Popen(
            [sys.executable, "-c", _SERVER_MAIN, self._db, str(n_workers), str(queue_depth)],
            stdout=subprocess.PIPE,
            env=env,
        )
        assert self._proc.stdout is not None
        self.port = int(self._proc.stdout.readline())

    def stats(self) -> Dict[str, Any]:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{self.port}/stats", timeout=30
        ) as resp:
            return json.loads(resp.read())

    def close(self) -> None:
        self._proc.terminate()
        try:
            self._proc.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover
            self._proc.kill()
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(self._db + suffix)
            except OSError:
                pass


# --------------------------------------------------------------------- client
async def _fire(port: int, event: Dict[str, Any], timeout: float) -> Dict[str, Any]:
    """One open-loop request; returns {lane, status, latency}."""
    body = json.dumps(
        {
            "order": event["order"],
            "wait": True,
            "lane": event["lane"],
            "tenant": event["tenant"],
            "max_time": event["max_time"],
            "use_store": False,
            "use_constructions": False,
        }
    ).encode()
    payload = (
        f"POST /solve HTTP/1.1\r\nHost: bench\r\n"
        f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode() + body
    start = time.perf_counter()
    status = 0
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection("127.0.0.1", port), timeout
        )
        writer.write(payload)
        await asyncio.wait_for(writer.drain(), timeout)
        data = await asyncio.wait_for(reader.read(), timeout)
        writer.close()
        head = data.split(b"\r\n", 1)[0].split(b" ")
        status = int(head[1]) if len(head) > 1 else 0
    except Exception:
        status = 0  # connect/read failure or deadline: counted as an error
    return {
        "lane": event["lane"],
        "status": status,
        "latency": time.perf_counter() - start,
    }


async def run_phase(
    port: int, trace: List[Dict[str, Any]], timeout: float
) -> List[Dict[str, Any]]:
    """Fire the whole schedule open-loop; gather every outcome."""
    t0 = time.perf_counter()

    async def fire_at(event: Dict[str, Any]) -> Dict[str, Any]:
        delay = event["t"] - (time.perf_counter() - t0)
        if delay > 0:
            await asyncio.sleep(delay)
        return await _fire(port, event, timeout)

    return list(await asyncio.gather(*[fire_at(e) for e in trace]))


def _percentile(sorted_values: List[float], pct: float) -> Optional[float]:
    if not sorted_values:
        return None
    return sorted_values[min(len(sorted_values) - 1, int(len(sorted_values) * pct))]


def summarise(
    results: List[Dict[str, Any]], duration: float
) -> Dict[str, Dict[str, Any]]:
    """Per-lane outcome counts, latency percentiles and sustained rate."""
    lanes: Dict[str, Dict[str, Any]] = {}
    for lane in sorted({r["lane"] for r in results}):
        rows = [r for r in results if r["lane"] == lane]
        ok = [r for r in rows if r["status"] == 200]
        latencies = sorted(r["latency"] for r in ok)
        slo_ms = _SLO_MS.get(lane, float("inf"))
        p99 = _percentile(latencies, 0.99)
        lanes[lane] = {
            "sent": len(rows),
            "ok": len(ok),
            "rejected_503": sum(1 for r in rows if r["status"] == 503),
            "rejected_429": sum(1 for r in rows if r["status"] == 429),
            "errors": sum(1 for r in rows if r["status"] not in (200, 503, 429)),
            "p50_ms": round(1000 * (_percentile(latencies, 0.50) or 0), 2),
            "p99_ms": round(1000 * (p99 or 0), 2),
            "sustained_rps": round(len(ok) / duration, 2),
            "slo_ms": None if slo_ms == float("inf") else slo_ms,
            "slo_met": bool(p99 is not None and p99 * 1000 <= slo_ms),
        }
    return lanes


# ----------------------------------------------------------------------- main
def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI-sized run")
    parser.add_argument("--seed", type=int, default=20260807, help="trace seed")
    parser.add_argument("--out", default="BENCH_qos.json", help="output JSON path")
    parser.add_argument(
        "--trace-out", default=None, help="write the generated arrival schedule here"
    )
    parser.add_argument(
        "--trace-in", default=None, help="replay a schedule written by --trace-out"
    )
    args = parser.parse_args()

    n_workers = 2
    max_time = 0.15
    queue_depth = 32
    duration = 12.0 if args.smoke else 30.0
    interactive_rate = 2.0
    capacity = n_workers / max_time  # jobs/s the pool can drain
    background_rate = round(2.5 * capacity, 2)  # >= 2x capacity flood
    client_timeout = 30.0

    if args.trace_in:
        traces = json.loads(Path(args.trace_in).read_text())
        baseline_trace, flood_trace = traces["baseline"], traces["flood"]
        duration = traces["duration"]
    else:
        baseline_trace = build_trace(
            seed=args.seed,
            duration=duration,
            interactive_rate=interactive_rate,
            background_rate=0.0,
            max_time=max_time,
        )
        flood_trace = build_trace(
            seed=args.seed + 1,
            duration=duration,
            interactive_rate=interactive_rate,
            background_rate=background_rate,
            max_time=max_time,
        )
    if args.trace_out:
        Path(args.trace_out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.trace_out).write_text(
            json.dumps(
                {
                    "seed": args.seed,
                    "duration": duration,
                    "baseline": baseline_trace,
                    "flood": flood_trace,
                },
                indent=2,
            )
            + "\n"
        )

    print(
        f"open-loop QoS bench: {n_workers} workers, max_time {max_time}s "
        f"-> capacity ~{capacity:.0f} jobs/s; flood {background_rate} req/s "
        f"({background_rate / capacity:.1f}x capacity), "
        f"interactive {interactive_rate} req/s, {duration:.0f}s phases",
        flush=True,
    )

    server = LaneServer(n_workers, queue_depth)
    try:
        print(f"phase 1: unloaded interactive baseline ({len(baseline_trace)} requests)", flush=True)
        baseline = summarise(
            asyncio.run(run_phase(server.port, baseline_trace, client_timeout)),
            duration,
        )
        print(f"phase 2: background flood ({len(flood_trace)} requests)", flush=True)
        flood = summarise(
            asyncio.run(run_phase(server.port, flood_trace, client_timeout)),
            duration,
        )
        # Let shed futures settle before sampling the server's own counters.
        time.sleep(0.5)
        stats = server.stats()
    finally:
        server.close()

    lane_stats = stats["scheduler"]["lanes"]
    base_p99 = baseline["interactive"]["p99_ms"]
    flood_p99 = flood["interactive"]["p99_ms"]
    interactive_clean = (
        flood["interactive"]["rejected_503"] == 0
        and flood["interactive"]["rejected_429"] == 0
        and lane_stats["interactive"]["shed"] == 0
        and lane_stats["interactive"]["rejected"] == 0
    )
    background_refused = (
        flood["background"]["rejected_503"] > 0
        or lane_stats["background"]["shed"] > 0
    )
    p99_held = bool(base_p99 and flood_p99 and flood_p99 <= 2.0 * base_p99)

    report = {
        "benchmark": "qos_open_loop",
        "mode": "smoke" if args.smoke else "full",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "seed": args.seed,
        "config": {
            "n_workers": n_workers,
            "max_time_s": max_time,
            "queue_depth": queue_depth,
            "duration_s": duration,
            "capacity_rps": round(capacity, 2),
            "interactive_rate_rps": interactive_rate,
            "background_rate_rps": background_rate,
            "flood_over_capacity": round(background_rate / capacity, 2),
            "order_mix": _ORDERS,
        },
        "baseline": baseline,
        "flood": flood,
        "server": {
            "lanes": lane_stats,
            "shed_total": stats["scheduler"]["shed"],
            "latency": stats.get("latency", {}),
        },
        "acceptance": {
            "interactive_p99_unloaded_ms": base_p99,
            "interactive_p99_flood_ms": flood_p99,
            "p99_ratio": round(flood_p99 / base_p99, 2) if base_p99 else None,
            "interactive_p99_within_2x": p99_held,
            "shedding_confined_to_background": interactive_clean,
            "background_flood_refused": background_refused,
        },
        "pass": bool(p99_held and interactive_clean and background_refused),
    }

    out_path = Path(args.out)
    # Merge-preserve unrelated top-level keys an earlier run left behind
    # (same convention as bench_incremental_vs_reference.py).
    if out_path.exists():
        try:
            existing = json.loads(out_path.read_text())
        except (OSError, ValueError):
            existing = None
        if isinstance(existing, dict):
            for key, value in existing.items():
                if key not in report:
                    report[key] = value
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    for phase_name, lanes in (("baseline", baseline), ("flood", flood)):
        for lane, row in lanes.items():
            print(
                f"  {phase_name:8s} {lane:11s} sent {row['sent']:5d}  "
                f"ok {row['ok']:5d}  503 {row['rejected_503']:4d}  "
                f"p50 {row['p50_ms']:7.1f} ms  p99 {row['p99_ms']:7.1f} ms",
                flush=True,
            )
    print(
        f"interactive p99 {base_p99:.0f} -> {flood_p99:.0f} ms "
        f"({(flood_p99 / base_p99) if base_p99 else 0:.2f}x, limit 2x); "
        f"background shed {lane_stats['background']['shed']}, "
        f"rejected {lane_stats['background']['rejected']}; "
        f"interactive shed {lane_stats['interactive']['shed']} -> "
        f"{'PASS' if report['pass'] else 'FAIL'} (written to {args.out})"
    )
    return 0 if report["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
