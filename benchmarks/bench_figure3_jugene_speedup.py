"""Benchmark regenerating Figure 3 — speed-ups on the JUGENE machine model."""

from __future__ import annotations

from conftest import run_experiment_once

from repro.experiments.figure3 import run_figure3


def test_figure3_jugene_speedups(benchmark, scale, runner):
    result = run_experiment_once(benchmark, run_figure3, scale, runner)
    by_order = {}
    for row in result.rows:
        by_order.setdefault(row["order"], []).append(row)
    for order, rows in by_order.items():
        rows.sort(key=lambda r: r["cores"])
        speedups = [r["speedup"] for r in rows]
        # At reproduction scale these core counts sit in the saturation regime
        # (EXPERIMENTS.md): require the curve not to degrade as cores grow and
        # every point to stay within a tolerance of its reference.
        assert min(speedups) >= 0.9, order
        assert speedups[-1] >= speedups[0] * 0.95, order
