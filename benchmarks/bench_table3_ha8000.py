"""Benchmark regenerating Table III — simulated HA8000 execution times (1–256 cores)."""

from __future__ import annotations

from conftest import run_experiment_once

from repro.experiments.table3 import run_table3


def test_table3_ha8000_parallel_times(benchmark, scale, runner):
    result = run_experiment_once(benchmark, run_table3, scale, runner)
    stats = result.metadata["statistics"]
    cores = result.metadata["cores"]
    for order in result.metadata["orders"]:
        avg_times = [stats[order][str(c)]["avg"] for c in cores]
        max_times = [stats[order][str(c)]["max"] for c in cores]
        # Paper claims: average time drops as cores increase, and the max/min
        # spread narrows a lot with more cores.
        assert avg_times[-1] < avg_times[0]
        assert max_times[-1] < max_times[0]
