"""Per-family serving benchmark: time-to-first-solution and store-hit rate.

Runs the same request pattern against one :class:`~repro.service.api.SolverService`
for every family of the :mod:`repro.problems` registry:

* **first** — one cold request with constructions enabled: the construction
  tier answers Costas/Queens/All-Interval orders algebraically, Magic Square
  (no construction) falls through to search.  This is the user-visible
  time-to-first-solution.
* **search** — one request with store and constructions disabled: how long a
  genuine search-tier solve of the family takes on the warm pool.
* **hits** — a burst of repeat requests for the same instance: all of them
  must be answered from the persistent store (the hit *rate* is the
  acceptance signal; the hit latency is the service's steady-state cost).

Results go to ``BENCH_families.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_families.py
    PYTHONPATH=src python benchmarks/bench_families.py --smoke --out smoke.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict

from repro.problems import get_family
from repro.service.api import ServiceConfig, SolverService

#: (first/hits order, search order) per family.  Search orders are small
#: enough that one multi-walk job answers in seconds on two workers.
_ORDERS = {
    "costas": (16, 10),
    "queens": (40, 9),
    "all-interval": (24, 9),
    "magic-square": (4, 3),
}
_SMOKE_ORDERS = {
    "costas": (12, 9),
    "queens": (16, 8),
    "all-interval": (12, 8),
    "magic-square": (4, 3),
}


def bench_family(
    service: SolverService, kind: str, serve_order: int, search_order: int, repeats: int
) -> Dict[str, object]:
    family = get_family(kind)

    start = time.perf_counter()
    first = service.submit(serve_order, kind=kind).result(timeout=300)
    t_first = time.perf_counter() - start
    assert first.solved, f"{kind} order {serve_order} did not solve"

    start = time.perf_counter()
    searched = service.submit(
        search_order, kind=kind, use_store=False, use_constructions=False
    ).result(timeout=300)
    t_search = time.perf_counter() - start
    assert searched.solved, f"{kind} search order {search_order} did not solve"

    hits = 0
    hit_latencies = []
    for _ in range(repeats):
        start = time.perf_counter()
        response = service.submit(serve_order, kind=kind).result(timeout=60)
        hit_latencies.append(time.perf_counter() - start)
        hits += int(response.source == "store")

    return {
        "kind": kind,
        "symmetry_group": family.symmetry.name,
        "symmetry_order": family.symmetry.order,
        "serve_order": serve_order,
        "search_order": search_order,
        "first_source": first.source,
        "time_to_first_solution_s": t_first,
        "search_time_s": t_search,
        "search_source": searched.source,
        "repeat_requests": repeats,
        "store_hits": hits,
        "store_hit_rate": hits / repeats if repeats else 0.0,
        "store_hit_p50_ms": sorted(hit_latencies)[len(hit_latencies) // 2] * 1000.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small orders, CI-sized run")
    parser.add_argument("--repeats", type=int, default=20, help="repeat requests per family")
    parser.add_argument("--workers", type=int, default=2, help="worker pool size")
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_families.json"),
        help="output JSON path",
    )
    args = parser.parse_args(argv)

    orders = _SMOKE_ORDERS if args.smoke else _ORDERS
    config = ServiceConfig(
        store_path=":memory:", n_workers=args.workers, default_max_time=240.0
    )
    rows = []
    wall_start = time.perf_counter()
    with SolverService(config) as service:
        for kind, (serve_order, search_order) in orders.items():
            row = bench_family(service, kind, serve_order, search_order, args.repeats)
            rows.append(row)
            print(
                f"{kind:14s} first={row['time_to_first_solution_s'] * 1000:8.2f}ms "
                f"({row['first_source']:12s}) search={row['search_time_s']:6.2f}s "
                f"hit_rate={row['store_hit_rate']:.0%} "
                f"hit_p50={row['store_hit_p50_ms']:.2f}ms"
            )
        kinds_stats = service.stats()["kinds"]
    wall = time.perf_counter() - wall_start

    payload = {
        "benchmark": "bench_families",
        "mode": "smoke" if args.smoke else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "wall_seconds": wall,
        "families": rows,
        "service_kind_counters": kinds_stats,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out} ({wall:.1f}s total)")

    # Acceptance gates: every family served, every repeat answered from the
    # store (rate 1.0 — the whole point of symmetry-class keying).
    for row in rows:
        if row["store_hit_rate"] < 1.0:
            print(f"error: {row['kind']} store-hit rate {row['store_hit_rate']:.0%} < 100%",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
