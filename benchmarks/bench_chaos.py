"""Chaos benchmark: availability and tail latency under worker crashes.

For each worker-crash rate in the sweep, a real ``repro`` HTTP server runs
in a **separate process** with deterministic fault injection active
(``worker.crash=<rate>``), and a small client pool fires search-tier
requests at it (``use_store=false``, ``use_constructions=false``, so every
request must survive the worker pool rather than being answered from the
warm tiers).  Each request records its HTTP status and wall latency.

Reported per rate:

* **availability** — fraction of requests answered ``200`` with a solved
  placement.  The acceptance target is ≥99% availability at a 10% crash
  rate: the pool's requeue-with-backoff and respawn machinery must absorb
  worker deaths without surfacing them to clients.
* **p50 / p99 latency** — crashes cost retries and respawns, so the tail
  shows the price of degradation even while availability holds.
* **malformed** — requests that did not terminate in a well-formed HTTP
  response (connection error / client timeout).  Must be zero at every
  rate: a crashing worker may slow an answer, never wedge one.

Results go to ``BENCH_chaos.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py
    PYTHONPATH=src python benchmarks/bench_chaos.py --smoke --out smoke.json
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Dict, List, Tuple

#: Body of the server subprocess: one threaded front-end with fault
#: injection configured from argv, ephemeral port printed on stdout.
_SERVER_MAIN = """
import sys
from repro.service.api import ServiceConfig
from repro.service.faults import FaultPlan
from repro.service.http import ServiceHTTPServer

spec, db = sys.argv[1], sys.argv[2]
plan = FaultPlan.parse(spec) if spec != "-" else None
config = ServiceConfig(
    store_path=db,
    n_workers=2,
    default_max_time=30.0,
    fault_plan=plan,
    max_walk_retries=4,
    liveness_grace=0.4,
    hang_grace=1.0,
)
server = ServiceHTTPServer(("127.0.0.1", 0), config=config, verbose=False)
print(server.port, flush=True)
server.serve_forever()
"""

#: Orders cycled through the request mix — all quick search-tier solves,
#: several distinct (kind, n) keys so one unlucky key cannot trip the
#: circuit breaker into dominating the availability number.
_ORDERS = [8, 9, 10, 11, 12]

_FULL_RATES = [0.0, 0.1, 0.3]
_SMOKE_RATES = [0.0, 0.1]


class ChaosServer:
    """One faulty server subprocess plus cleanup."""

    def __init__(self, crash_rate: float, seed: int) -> None:
        self.crash_rate = crash_rate
        spec = f"worker.crash={crash_rate},seed={seed}" if crash_rate else "-"
        self._db = tempfile.mktemp(prefix="bench-chaos-", suffix=".db")
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env.pop("REPRO_FAULTS", None)
        self._proc = subprocess.Popen(
            [sys.executable, "-c", _SERVER_MAIN, spec, self._db],
            stdout=subprocess.PIPE,
            env=env,
        )
        assert self._proc.stdout is not None
        self.port = int(self._proc.stdout.readline())

    def close(self) -> None:
        self._proc.terminate()
        try:
            self._proc.wait(timeout=15)
        except subprocess.TimeoutExpired:  # pragma: no cover
            self._proc.kill()
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(self._db + suffix)
            except OSError:
                pass


def _one_request(port: int, order: int, timeout: float) -> Tuple[int, bool, float]:
    """POST one search-tier solve; (status, solved?, latency).  status 0
    means the request did not terminate in a well-formed HTTP response."""
    body = json.dumps(
        {
            "order": order,
            "wait": True,
            "use_store": False,
            "use_constructions": False,
            "max_time": 15.0,
        }
    ).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/solve",
        data=body,
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    start = time.perf_counter()
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            payload = json.loads(resp.read())
            status, solved = resp.status, bool(payload.get("solved"))
    except urllib.error.HTTPError as exc:
        exc.read()
        status, solved = exc.code, False
    except Exception:
        status, solved = 0, False
    return status, solved, time.perf_counter() - start


def _percentile(sorted_values: List[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def run_rate(
    crash_rate: float,
    *,
    seed: int,
    requests: int,
    concurrency: int,
    timeout: float,
) -> Dict[str, object]:
    server = ChaosServer(crash_rate, seed)
    try:
        orders = [_ORDERS[i % len(_ORDERS)] for i in range(requests)]
        start = time.perf_counter()
        with concurrent.futures.ThreadPoolExecutor(concurrency) as pool:
            results = list(
                pool.map(lambda o: _one_request(server.port, o, timeout), orders)
            )
        wall = time.perf_counter() - start
    finally:
        server.close()
    ok = sum(1 for status, solved, _ in results if status == 200 and solved)
    malformed = sum(1 for status, _, _ in results if status == 0)
    statuses: Dict[str, int] = {}
    for status, _, _ in results:
        statuses[str(status)] = statuses.get(str(status), 0) + 1
    latencies = sorted(latency for _, _, latency in results)
    row = {
        "crash_rate": crash_rate,
        "requests": requests,
        "ok": ok,
        "availability": round(ok / requests, 4),
        "malformed": malformed,
        "statuses": statuses,
        "p50_ms": round(1000 * _percentile(latencies, 0.50), 2),
        "p99_ms": round(1000 * _percentile(latencies, 0.99), 2),
        "max_ms": round(1000 * latencies[-1], 2),
        "wall_s": round(wall, 2),
    }
    print(
        f"  crash={crash_rate:4.0%}  ok {ok}/{requests} "
        f"({row['availability']:7.2%})  p50 {row['p50_ms']:7.1f} ms  "
        f"p99 {row['p99_ms']:7.1f} ms  malformed {malformed}",
        flush=True,
    )
    return row


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI-sized run")
    parser.add_argument("--out", default="BENCH_chaos.json", help="output JSON path")
    parser.add_argument("--seed", type=int, default=2012, help="fault-plan seed")
    parser.add_argument(
        "--timeout", type=float, default=60.0, help="per-request client timeout (s)"
    )
    args = parser.parse_args()

    rates = _SMOKE_RATES if args.smoke else _FULL_RATES
    requests = 25 if args.smoke else 200
    concurrency = 4 if args.smoke else 8

    print("availability under worker-crash sweep:", flush=True)
    rows = [
        run_rate(
            rate,
            seed=args.seed,
            requests=requests,
            concurrency=concurrency,
            timeout=args.timeout,
        )
        for rate in rates
    ]

    by_rate = {row["crash_rate"]: row for row in rows}
    at_10 = by_rate.get(0.1)
    well_formed = all(row["malformed"] == 0 for row in rows)
    payload = {
        "benchmark": "chaos",
        "mode": "smoke" if args.smoke else "full",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "request": {
            "orders": _ORDERS,
            "use_store": False,
            "use_constructions": False,
            "concurrency": concurrency,
        },
        "server": {"n_workers": 2, "max_walk_retries": 4, "liveness_grace": 0.4},
        "sweep": rows,
        "availability_at_10pct": at_10["availability"] if at_10 else None,
        "all_requests_well_formed": well_formed,
        "targets": {"availability_at_10pct_min": 0.99, "malformed_max": 0},
    }
    if args.smoke:
        # Smoke is a machinery canary: with 25 requests per rate, one
        # unlucky request is 4% of the sample, so the bar is "nothing
        # wedged and most answers arrived", not the full 99% target.
        payload["pass"] = bool(
            well_formed
            and all(row["availability"] >= 0.9 for row in rows)
        )
    else:
        payload["pass"] = bool(
            well_formed
            and by_rate[0.0]["availability"] == 1.0
            and at_10 is not None
            and at_10["availability"] >= 0.99
        )
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    summary = ", ".join(
        f"{row['crash_rate']:.0%}->{row['availability']:.2%}" for row in rows
    )
    print(
        f"availability [{summary}], well-formed={well_formed} -> "
        f"{'PASS' if payload['pass'] else 'FAIL'} (written to {args.out})"
    )
    return 0 if payload["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
