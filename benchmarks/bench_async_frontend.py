"""Concurrency benchmark: asyncio HTTP front-end vs the threaded one.

Two measurements, both against real servers running in **separate
processes** (so the client's event loop never shares a GIL with the server
under test):

* **Concurrency ladder** — C clients connect *simultaneously* and each holds
  a ``wait=true`` ``POST /solve`` open until the (store-warm) answer
  arrives.  A level is *sustained* when every client gets a correct answer
  within the deadline.  The threaded front-end pays one OS thread per
  connection and a 5-entry accept backlog, so a simultaneous burst lands in
  SYN retransmits and timeouts; the async front-end accepts the same burst
  on one loop.  The acceptance target is the async server sustaining ≥10×
  the threaded server's ceiling at no worse a p50.
* **Batch amortisation** — 32 store-warm instances submitted as 32
  sequential ``POST /solve`` calls on one keep-alive connection (the
  *strongest* sequential rival — no reconnect cost) versus one
  ``POST /solve-batch`` body.  Target: the batch completes in ≤1/5 the
  sequential wall time.

Results go to ``BENCH_async.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_async_frontend.py
    PYTHONPATH=src python benchmarks/bench_async_frontend.py --smoke --out smoke.json
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import os
import platform
import statistics
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Body of the server subprocess: start one front-end on an ephemeral port,
#: print the port, serve until killed.
_SERVER_MAIN = """
import sys
from repro.service.api import ServiceConfig

kind = sys.argv[1]
config = ServiceConfig(store_path=sys.argv[2], n_workers=1, default_max_time=120.0)
if kind == "async":
    from repro.service.http_async import AsyncServiceHTTPServer as Server
else:
    from repro.service.http import ServiceHTTPServer as Server
server = Server(("127.0.0.1", 0), config=config, verbose=False)
print(server.port, flush=True)
server.serve_forever()
"""

#: The store-warm instance every ladder client requests.
_LADDER_ORDER = 14

_FULL_LEVELS = [25, 50, 100, 200, 400, 800, 1600]
_SMOKE_LEVELS = [10, 20, 40, 80, 160]

#: Orders cycled through the 32 batch items (all constructible or store-warm
#: after the warmup pass, so both sides measure pure serving overhead).
_BATCH_ORDERS = [12, 13, 14, 16, 17, 18, 27, 29]


class FrontendUnderTest:
    """One server subprocess plus the client plumbing to talk to it."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._db = tempfile.mktemp(prefix=f"bench-async-{kind}-", suffix=".db")
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self._proc = subprocess.Popen(
            [sys.executable, "-c", _SERVER_MAIN, kind, self._db],
            stdout=subprocess.PIPE,
            env=env,
        )
        assert self._proc.stdout is not None
        self.port = int(self._proc.stdout.readline())

    def close(self) -> None:
        self._proc.terminate()
        try:
            self._proc.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover
            self._proc.kill()
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(self._db + suffix)
            except OSError:
                pass

    # ------------------------------------------------------------ sync client
    def post(self, path: str, body: dict, timeout: float = 60.0) -> Tuple[int, dict]:
        data = json.dumps(body).encode()
        request = urllib.request.Request(
            f"http://127.0.0.1:{self.port}{path}",
            data=data,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())

    def warm(self, orders: List[int]) -> None:
        for order in orders:
            status, payload = self.post("/solve", {"order": order, "wait": True})
            assert status == 200 and payload["solved"], (self.kind, order, payload)


# --------------------------------------------------------------- ladder phase
async def _one_client(port: int, payload: bytes, deadline: float) -> Tuple[float, bool]:
    """Connect, POST, read the full response; (latency, correct?)."""
    start = time.perf_counter()
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection("127.0.0.1", port), deadline
        )
        writer.write(payload)
        await asyncio.wait_for(writer.drain(), deadline)
        data = await asyncio.wait_for(reader.read(), deadline)
        writer.close()
        ok = b" 200 " in data.split(b"\r\n", 1)[0] and b'"solved": true' in data
        return time.perf_counter() - start, ok
    except Exception:
        return time.perf_counter() - start, False


async def _run_level(port: int, clients: int, deadline: float) -> Dict[str, object]:
    body = json.dumps({"order": _LADDER_ORDER, "wait": True}).encode()
    payload = (
        f"POST /solve HTTP/1.1\r\nHost: bench\r\n"
        f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode() + body
    results = await asyncio.gather(
        *[_one_client(port, payload, deadline) for _ in range(clients)]
    )
    latencies = sorted(latency for latency, _ in results)
    ok = sum(1 for _, correct in results if correct)
    return {
        "clients": clients,
        "ok": ok,
        "errors": clients - ok,
        "p50_ms": round(1000 * latencies[len(latencies) // 2], 2),
        "p95_ms": round(1000 * latencies[min(len(latencies) - 1, int(len(latencies) * 0.95))], 2),
        "p99_ms": round(1000 * latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))], 2),
        "max_ms": round(1000 * latencies[-1], 2),
        "sustained": ok == clients,
    }


def run_ladder(
    frontend: FrontendUnderTest, levels: List[int], deadline: float
) -> Dict[str, object]:
    """Climb the concurrency ladder until the first unsustained level."""
    frontend.warm([_LADDER_ORDER])
    rows: List[Dict[str, object]] = []
    max_sustained = 0
    p50_at_max: Optional[float] = None
    p99_at_max: Optional[float] = None
    for clients in levels:
        row = asyncio.run(_run_level(frontend.port, clients, deadline))
        rows.append(row)
        print(
            f"  {frontend.kind:9s} C={clients:5d}  ok {row['ok']}/{clients}  "
            f"p50 {row['p50_ms']:8.1f} ms  p99 {row['p99_ms']:8.1f} ms",
            flush=True,
        )
        if row["sustained"]:
            max_sustained = clients
            p50_at_max = row["p50_ms"]
            p99_at_max = row["p99_ms"]
        else:
            break
    return {
        "levels": rows,
        "max_sustained_clients": max_sustained,
        "p50_at_max_ms": p50_at_max,
        "p99_at_max_ms": p99_at_max,
    }


# ---------------------------------------------------------------- batch phase
def run_batch(
    frontend: FrontendUnderTest, n_items: int, rounds: int
) -> Dict[str, object]:
    """Sequential keep-alive /solve calls vs one /solve-batch, best of rounds."""
    items = [
        {"order": _BATCH_ORDERS[i % len(_BATCH_ORDERS)]} for i in range(n_items)
    ]
    frontend.warm([item["order"] for item in items])
    conn = http.client.HTTPConnection("127.0.0.1", frontend.port, timeout=60)

    def post(path: str, body: dict) -> Tuple[int, dict]:
        conn.request("POST", path, json.dumps(body), {"Content-Type": "application/json"})
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())

    sequential: List[float] = []
    batched: List[float] = []
    for _ in range(rounds):
        start = time.perf_counter()
        for item in items:
            status, payload = post("/solve", {**item, "wait": True})
            assert status == 200 and payload["solved"], payload
        sequential.append(time.perf_counter() - start)

        start = time.perf_counter()
        status, payload = post("/solve-batch", {"items": items, "wait": True})
        batched.append(time.perf_counter() - start)
        assert status == 200, payload
        assert all(r["status"] == "done" and r["solved"] for r in payload["results"])
    conn.close()
    t_seq = statistics.median(sequential)
    t_batch = statistics.median(batched)
    print(
        f"  batch     N={n_items}  sequential {t_seq * 1000:7.1f} ms  "
        f"batch {t_batch * 1000:7.1f} ms  amortisation {t_seq / t_batch:4.1f}x",
        flush=True,
    )
    return {
        "items": n_items,
        "rounds": rounds,
        "sequential_ms": round(1000 * t_seq, 2),
        "batch_ms": round(1000 * t_batch, 2),
        "amortisation": round(t_seq / t_batch, 2),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI-sized run")
    parser.add_argument("--out", default="BENCH_async.json", help="output JSON path")
    parser.add_argument(
        "--deadline", type=float, default=10.0, help="per-client deadline (s)"
    )
    args = parser.parse_args()

    levels = _SMOKE_LEVELS if args.smoke else _FULL_LEVELS
    n_items = 16 if args.smoke else 32
    rounds = 3 if args.smoke else 5

    ladders: Dict[str, Dict[str, object]] = {}
    print("threaded front-end concurrency ladder:", flush=True)
    frontend = FrontendUnderTest("threaded")
    try:
        ladders["threaded"] = run_ladder(frontend, levels, args.deadline)
    finally:
        frontend.close()
    # The acceptance comparison point: 10x the threaded ceiling.  Make sure
    # the async ladder actually measures that level.
    threaded_ceiling = ladders["threaded"]["max_sustained_clients"]
    target_level = min(10 * threaded_ceiling, 2048) if threaded_ceiling else None
    async_levels = sorted(
        set(levels) | ({target_level} if target_level else set())
    )
    print("async front-end concurrency ladder:", flush=True)
    frontend = FrontendUnderTest("async")
    try:
        ladders["async"] = run_ladder(frontend, async_levels, args.deadline)
    finally:
        frontend.close()

    print("async front-end batch amortisation:", flush=True)
    frontend = FrontendUnderTest("async")
    try:
        batch = run_batch(frontend, n_items, rounds)
    finally:
        frontend.close()

    threaded_max = ladders["threaded"]["max_sustained_clients"]
    async_max = ladders["async"]["max_sustained_clients"]
    ratio = (async_max / threaded_max) if threaded_max else float(async_max)
    threaded_p50 = ladders["threaded"]["p50_at_max_ms"]
    # p50 is compared *at the acceptance point*: the async server carrying
    # 10x the threaded ceiling must answer no slower than the threaded
    # server did at its own ceiling.
    async_p50 = next(
        (
            row["p50_ms"]
            for row in ladders["async"]["levels"]
            if row["sustained"] and target_level and row["clients"] == target_level
        ),
        ladders["async"]["p50_at_max_ms"],
    )
    async_p99 = next(
        (
            row["p99_ms"]
            for row in ladders["async"]["levels"]
            if row["sustained"] and target_level and row["clients"] == target_level
        ),
        ladders["async"]["p99_at_max_ms"],
    )
    p50_not_worse = (
        async_p50 is not None and threaded_p50 is not None and async_p50 <= threaded_p50
    )
    payload = {
        "benchmark": "async_frontend",
        "mode": "smoke" if args.smoke else "full",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "ladder": {
            "request": {"order": _LADDER_ORDER, "wait": True},
            "deadline_s": args.deadline,
            "threaded": ladders["threaded"],
            "async": ladders["async"],
        },
        "concurrency_ratio": round(ratio, 2),
        "p50_comparison_level": target_level,
        "async_p50_at_comparison_ms": async_p50,
        "async_p99_at_comparison_ms": async_p99,
        "threaded_p50_at_ceiling_ms": threaded_p50,
        "threaded_p99_at_ceiling_ms": ladders["threaded"]["p99_at_max_ms"],
        "async_p50_not_worse": p50_not_worse,
        "batch": batch,
        "targets": {"concurrency_ratio_min": 10.0, "batch_amortisation_min": 5.0},
    }
    if args.smoke:
        # Smoke is a machinery canary, not the acceptance measurement: the
        # small ladder cannot separate the servers by 10x (the threaded one
        # only collapses in the hundreds), so just require the async ladder
        # to be clean and the batch path to amortise at all.
        payload["pass"] = bool(
            all(row["sustained"] for row in ladders["async"]["levels"])
            and batch["amortisation"] >= 2.0
        )
    else:
        payload["pass"] = bool(
            ratio >= 10.0 and p50_not_worse and batch["amortisation"] >= 5.0
        )
    out_path = Path(args.out)
    # Merge-preserve: keep top-level keys a different tool (or an earlier
    # fuller run) left in the file and we do not produce ourselves, so
    # repeated smoke runs never clobber unrelated results.
    if out_path.exists():
        try:
            existing = json.loads(out_path.read_text())
        except (OSError, ValueError):
            existing = None
        if isinstance(existing, dict):
            for key, value in existing.items():
                if key not in payload:
                    payload[key] = value
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"concurrency {async_max} vs {threaded_max} clients ({ratio:.0f}x), "
        f"p50 {async_p50} vs {threaded_p50} ms (p99 {async_p99} ms), "
        f"batch amortisation {batch['amortisation']}x -> "
        f"{'PASS' if payload['pass'] else 'FAIL'} (written to {args.out})"
    )
    return 0 if payload["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
