"""Benchmark regenerating Table II — Adaptive Search versus Dialectic Search."""

from __future__ import annotations

from conftest import run_experiment_once

from repro.experiments.table2 import run_table2


def test_table2_as_vs_dialectic_search(benchmark, scale, runner):
    result = run_experiment_once(benchmark, run_table2, scale, runner)
    ratios = [row["ds_over_as"] for row in result.rows if row["ds_avg_time"]]
    assert ratios, "expected at least one DS/AS ratio"
    # The paper's claim: AS is faster than DS on the CAP (ratio > 1 on average,
    # growing with the size).  At reproduction scale we require the average
    # ratio to favour AS.
    assert sum(ratios) / len(ratios) > 1.0
