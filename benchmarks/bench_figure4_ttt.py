"""Benchmark regenerating Figure 4 — time-to-target plots and exponential fits."""

from __future__ import annotations

from conftest import run_experiment_once

from repro.experiments.figure4 import run_figure4


def test_figure4_time_to_target(benchmark, scale, runner):
    result = run_experiment_once(benchmark, run_figure4, scale, runner)
    rows = sorted(result.rows, key=lambda r: r["cores"])
    # The runtime distributions should be reasonably approximated by a shifted
    # exponential (the paper's visual claim), quantified by the KS distance.
    assert all(row["ks_distance"] < 0.35 for row in rows)
    # More cores -> higher probability of reaching the target within the
    # common reference time (the 50% / 75% / 95% / 100% reading of Figure 4).
    probs = [row["prob_within_reference_time"] for row in rows]
    assert probs == sorted(probs)
    assert probs[0] >= 0.3 and probs[-1] >= 0.9
